#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

using gdk::ScalarValue;

class BasicSqlTest : public ::testing::Test {
 protected:
  Database db_;

  ResultSet MustQuery(const std::string& q) {
    auto r = db_.Query(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? std::move(r.value()) : ResultSet();
  }
  void MustRun(const std::string& q) {
    Status st = db_.Run(q);
    ASSERT_TRUE(st.ok()) << q << " -> " << st.ToString();
  }
};

TEST_F(BasicSqlTest, SelectConstant) {
  ResultSet rs = MustQuery("SELECT 1 + 2 AS three");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 3);
  EXPECT_EQ(rs.column(0).name, "three");
}

TEST_F(BasicSqlTest, CreateInsertSelect) {
  MustRun("CREATE TABLE t (a INT, b DOUBLE, s VARCHAR)");
  MustRun("INSERT INTO t VALUES (1, 1.5, 'one'), (2, 2.5, 'two')");
  ResultSet rs = MustQuery("SELECT a, b, s FROM t");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(rs.Value(0, 1).d, 1.5);
  EXPECT_EQ(rs.Value(1, 2).s, "two");
}

TEST_F(BasicSqlTest, WhereAndExpressions) {
  MustRun("CREATE TABLE t (a INT, b INT)");
  MustRun("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)");
  ResultSet rs = MustQuery("SELECT a + b AS c FROM t WHERE a % 2 = 0");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 22);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 44);
}

TEST_F(BasicSqlTest, NullThreeValuedLogic) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (NULL), (3)");
  EXPECT_EQ(MustQuery("SELECT a FROM t WHERE a > 0").NumRows(), 2u);
  EXPECT_EQ(MustQuery("SELECT a FROM t WHERE a IS NULL").NumRows(), 1u);
  EXPECT_EQ(MustQuery("SELECT a FROM t WHERE a IS NOT NULL").NumRows(), 2u);
  EXPECT_EQ(MustQuery("SELECT a FROM t WHERE NOT (a > 0)").NumRows(), 0u);
}

TEST_F(BasicSqlTest, GroupByWithAggregates) {
  MustRun("CREATE TABLE sales (region VARCHAR, amount INT)");
  MustRun(
      "INSERT INTO sales VALUES ('n', 10), ('s', 20), ('n', 30), ('s', 5), "
      "('w', NULL)");
  ResultSet rs = MustQuery(
      "SELECT region, SUM(amount) AS total, COUNT(*) AS n, AVG(amount) AS a "
      "FROM sales GROUP BY region ORDER BY region");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.Value(0, 0).s, "n");
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 40);
  EXPECT_EQ(rs.Value(2, 0).s, "w");
  EXPECT_TRUE(rs.Value(2, 1).is_null);  // SUM of only-NULL group
  EXPECT_EQ(rs.Value(2, 2).AsInt64(), 1);  // COUNT(*) counts the row
}

TEST_F(BasicSqlTest, HavingFiltersGroups) {
  MustRun("CREATE TABLE t (k INT, v INT)");
  MustRun("INSERT INTO t VALUES (1, 5), (1, 6), (2, 100)");
  ResultSet rs =
      MustQuery("SELECT k, SUM(v) AS s FROM t GROUP BY k HAVING SUM(v) > 50");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 2);
}

TEST_F(BasicSqlTest, WholeTableAggregates) {
  MustRun("CREATE TABLE t (v INT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3)");
  ResultSet rs =
      MustQuery("SELECT SUM(v) AS s, COUNT(*) AS c, MIN(v) AS lo FROM t");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 6);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 3);
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 1);
}

TEST_F(BasicSqlTest, EquiJoin) {
  MustRun("CREATE TABLE a (id INT, x INT)");
  MustRun("CREATE TABLE b (id INT, y INT)");
  MustRun("INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)");
  MustRun("INSERT INTO b VALUES (2, 200), (3, 300), (4, 400)");
  ResultSet rs = MustQuery(
      "SELECT a.x, b.y FROM a JOIN b ON a.id = b.id ORDER BY a.x");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 20);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 200);
}

TEST_F(BasicSqlTest, JoinWithArithmeticKeys) {
  MustRun("CREATE TABLE a (x INT)");
  MustRun("CREATE TABLE b (x INT)");
  MustRun("INSERT INTO a VALUES (1), (2)");
  MustRun("INSERT INTO b VALUES (2), (3)");
  // b.x = a.x + 1 is an equi-join on computed keys.
  ResultSet rs = MustQuery(
      "SELECT a.x AS ax, b.x AS bx FROM a JOIN b ON b.x = a.x + 1 "
      "ORDER BY ax");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 1);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 2);
}

TEST_F(BasicSqlTest, CrossJoinWithRangePredicate) {
  MustRun("CREATE TABLE pts (p INT)");
  MustRun("CREATE TABLE rngs (lo INT, hi INT)");
  MustRun("INSERT INTO pts VALUES (1), (5), (9)");
  MustRun("INSERT INTO rngs VALUES (0, 4), (8, 10)");
  ResultSet rs = MustQuery(
      "SELECT p FROM pts, rngs WHERE p >= lo AND p < hi ORDER BY p");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 1);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 9);
}

TEST_F(BasicSqlTest, SubqueryInFrom) {
  MustRun("CREATE TABLE t (v INT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3)");
  ResultSet rs = MustQuery(
      "SELECT w + 1 AS u FROM (SELECT v * 10 AS w FROM t WHERE v > 1) AS s "
      "ORDER BY u");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 21);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 31);
}

TEST_F(BasicSqlTest, OrderByLimitAndCase) {
  MustRun("CREATE TABLE t (v INT)");
  MustRun("INSERT INTO t VALUES (3), (1), (2)");
  ResultSet rs = MustQuery(
      "SELECT CASE WHEN v >= 2 THEN 'big' ELSE 'small' END AS size, v "
      "FROM t ORDER BY v DESC LIMIT 2");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(0, 0).s, "big");
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 3);
}

TEST_F(BasicSqlTest, UpdateAndDelete) {
  MustRun("CREATE TABLE t (k INT, v INT)");
  MustRun("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  MustRun("UPDATE t SET v = v + 1 WHERE k >= 2");
  ResultSet rs = MustQuery("SELECT v FROM t ORDER BY k");
  EXPECT_EQ(rs.Value(0, 0).AsInt64(), 10);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 21);
  MustRun("DELETE FROM t WHERE k = 2");
  EXPECT_EQ(MustQuery("SELECT * FROM t").NumRows(), 2u);
}

TEST_F(BasicSqlTest, BindErrors) {
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(db_.Query("SELECT nosuch FROM t").ok());
  EXPECT_FALSE(db_.Query("SELECT a FROM missing").ok());
  EXPECT_FALSE(db_.Query("SELECT SUM(a) FROM t WHERE SUM(a) > 1").ok());
  EXPECT_FALSE(db_.Run("CREATE TABLE t (b INT)").ok());  // duplicate
}

TEST_F(BasicSqlTest, AmbiguousColumnFails) {
  MustRun("CREATE TABLE a (v INT)");
  MustRun("CREATE TABLE b (v INT)");
  MustRun("INSERT INTO a VALUES (1)");
  MustRun("INSERT INTO b VALUES (1)");
  EXPECT_FALSE(db_.Query("SELECT v FROM a, b WHERE a.v = b.v").ok());
}

TEST_F(BasicSqlTest, DivisionByZeroSurfacesAsError) {
  MustRun("CREATE TABLE t (v INT)");
  MustRun("INSERT INTO t VALUES (1)");
  auto r = db_.Query("SELECT v / 0 FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kExecError);
}

TEST_F(BasicSqlTest, CreateTableAsSelect) {
  MustRun("CREATE TABLE t (v INT)");
  MustRun("INSERT INTO t VALUES (1), (2)");
  MustRun("CREATE TABLE t2 AS SELECT v * 2 AS w FROM t");
  ResultSet rs = MustQuery("SELECT w FROM t2 ORDER BY w");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.Value(1, 0).AsInt64(), 4);
}

TEST_F(BasicSqlTest, ExplainShowsMal) {
  MustRun("CREATE TABLE t (v INT)");
  ResultSet rs = MustQuery("EXPLAIN SELECT v + 1 FROM t WHERE v > 0");
  ASSERT_GE(rs.NumRows(), 2u);
  std::string all;
  for (size_t i = 0; i < rs.NumRows(); ++i) all += rs.Value(i, 0).s + "\n";
  EXPECT_NE(all.find("sql.bind"), std::string::npos);
  EXPECT_NE(all.find("algebra.select"), std::string::npos);
  EXPECT_NE(all.find("batcalc.+"), std::string::npos);
}

TEST_F(BasicSqlTest, BetweenAndIn) {
  MustRun("CREATE TABLE t (v INT)");
  MustRun("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  EXPECT_EQ(MustQuery("SELECT v FROM t WHERE v BETWEEN 2 AND 4").NumRows(),
            3u);
  EXPECT_EQ(MustQuery("SELECT v FROM t WHERE v NOT BETWEEN 2 AND 4").NumRows(),
            2u);
  EXPECT_EQ(MustQuery("SELECT v FROM t WHERE v IN (1, 5, 9)").NumRows(), 2u);
  EXPECT_EQ(MustQuery("SELECT v FROM t WHERE v NOT IN (1, 5)").NumRows(), 3u);
}

TEST_F(BasicSqlTest, InsertColumnSubsetUsesDefaults) {
  MustRun("CREATE TABLE t (a INT, b INT DEFAULT 7, c VARCHAR)");
  MustRun("INSERT INTO t (a) VALUES (1)");
  ResultSet rs = MustQuery("SELECT a, b, c FROM t");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 7);
  EXPECT_TRUE(rs.Value(0, 2).is_null);
}

}  // namespace
}  // namespace engine
}  // namespace sciql
