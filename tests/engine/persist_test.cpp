// Persistence: arrays and tables survive a save/load cycle with schemas,
// defaults, data, holes and string heaps intact.

#include "src/catalog/persist.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

TEST(PersistTest, RoundTripArraysAndTables) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE ARRAY m (x INT DIMENSION[0:1:4], "
                     "y INT DIMENSION[0:1:4], v INT DEFAULT 0)")
                  .ok());
  ASSERT_TRUE(db.Run("UPDATE m SET v = CASE WHEN x > y THEN x + y "
                     "WHEN x < y THEN x - y ELSE 0 END")
                  .ok());
  ASSERT_TRUE(db.Run("DELETE FROM m WHERE x > y").ok());
  ASSERT_TRUE(db.Run("CREATE TABLE t (k INT, s VARCHAR, d DOUBLE)").ok());
  ASSERT_TRUE(
      db.Run("INSERT INTO t VALUES (1, 'one', 1.5), (2, NULL, NULL)").ok());

  auto bytes = catalog::SerializeCatalog(*db.catalog());
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  Database db2;
  ASSERT_TRUE(catalog::DeserializeCatalog(db2.catalog(), *bytes).ok());

  // Array schema, data and holes.
  auto rs = db2.Query("SELECT v FROM m WHERE x = 0 AND y = 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), -3);
  rs = db2.Query("SELECT v FROM m WHERE x = 3 AND y = 0");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->Value(0, 0).is_null);

  // Table data incl. strings and nulls.
  rs = db2.Query("SELECT k, s, d FROM t ORDER BY k");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->Value(0, 1).s, "one");
  EXPECT_TRUE(rs->Value(1, 1).is_null);
  EXPECT_TRUE(rs->Value(1, 2).is_null);

  // The loaded array keeps its default: a new dimension expansion fills
  // with 0 (not NULL).
  ASSERT_TRUE(
      db2.Run("ALTER ARRAY m ALTER DIMENSION x SET RANGE [0:1:5]").ok());
  rs = db2.Query("SELECT v FROM m WHERE x = 4 AND y = 0");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), 0);
}

TEST(PersistTest, FileRoundTrip) {
  Database db;
  ASSERT_TRUE(
      db.Run("CREATE ARRAY a (x INT DIMENSION[-2:2:4], v DOUBLE DEFAULT 1.5)")
          .ok());
  ASSERT_TRUE(db.Run("UPDATE a SET v = x").ok());
  std::string path = ::testing::TempDir() + "/sciql_persist_test.db";
  ASSERT_TRUE(catalog::SaveCatalog(*db.catalog(), path).ok());

  Database db2;
  ASSERT_TRUE(catalog::LoadCatalog(db2.catalog(), path).ok());
  auto rs = db2.Query("SELECT x, v FROM a ORDER BY x");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 3u);  // -2, 0, 2
  EXPECT_DOUBLE_EQ(rs->Value(0, 1).d, -2.0);
  std::remove(path.c_str());
}

TEST(PersistTest, LoadedDatabaseIsFullyOperational) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE ARRAY g (x INT DIMENSION[0:1:4], "
                     "y INT DIMENSION[0:1:4], v INT DEFAULT 0); "
                     "UPDATE g SET v = x * 4 + y")
                  .ok());
  auto bytes = catalog::SerializeCatalog(*db.catalog());
  ASSERT_TRUE(bytes.ok());
  Database db2;
  ASSERT_TRUE(catalog::DeserializeCatalog(db2.catalog(), *bytes).ok());
  // Tiling works on the loaded array (dimension BATs rematerialized).
  auto rs = db2.Query(
      "SELECT [x], [y], SUM(v) AS s FROM g GROUP BY g[x:x+2][y:y+2] "
      "HAVING x = 0 AND y = 0");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->Value(0, 2).AsInt64(), 10);
}

TEST(PersistTest, RejectsCorruptImages) {
  Database db;
  EXPECT_FALSE(catalog::DeserializeCatalog(db.catalog(), "garbage").ok());
  EXPECT_FALSE(catalog::DeserializeCatalog(db.catalog(), "").ok());

  Database src;
  ASSERT_TRUE(src.Run("CREATE TABLE t (v INT)").ok());
  auto bytes = catalog::SerializeCatalog(*src.catalog());
  ASSERT_TRUE(bytes.ok());
  std::string truncated = bytes->substr(0, bytes->size() / 2);
  Database db2;
  EXPECT_FALSE(catalog::DeserializeCatalog(db2.catalog(), truncated).ok());
  std::string trailing = *bytes + "x";
  Database db3;
  EXPECT_FALSE(catalog::DeserializeCatalog(db3.catalog(), trailing).ok());
}

TEST(PersistTest, RejectsNonEmptyTarget) {
  Database src;
  ASSERT_TRUE(src.Run("CREATE TABLE t (v INT)").ok());
  auto bytes = catalog::SerializeCatalog(*src.catalog());
  ASSERT_TRUE(bytes.ok());
  Database busy;
  ASSERT_TRUE(busy.Run("CREATE TABLE other (v INT)").ok());
  EXPECT_FALSE(catalog::DeserializeCatalog(busy.catalog(), *bytes).ok());
}

TEST(PersistTest, MissingFileFails) {
  Database db;
  EXPECT_FALSE(
      catalog::LoadCatalog(db.catalog(), "/nonexistent/path.db").ok());
}

}  // namespace
}  // namespace engine
}  // namespace sciql
