// Golden reproduction of the paper's Figure 1 (a)-(f): the running 4x4
// matrix example, executed verbatim through the SciQL engine.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

class Fig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Run("CREATE ARRAY matrix ("
                        "x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
                        "v INT DEFAULT 0)")
                    .ok());
  }

  // Cell value at (x, y), fetched through SciQL.
  gdk::ScalarValue At(int64_t x, int64_t y) {
    auto r = db_.Query("SELECT v FROM matrix WHERE x = " + std::to_string(x) +
                       " AND y = " + std::to_string(y));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->NumRows(), 1u);
    return r->Value(0, 0);
  }

  void ApplyFig1b() {
    ASSERT_TRUE(db_.Run("UPDATE matrix SET v = CASE "
                        "WHEN x > y THEN x + y WHEN x < y THEN x - y "
                        "ELSE 0 END")
                    .ok());
  }

  void ApplyFig1c() {
    ApplyFig1b();
    ASSERT_TRUE(db_.Run("INSERT INTO matrix SELECT [x], [y], x * y "
                        "FROM matrix WHERE x = y")
                    .ok());
    ASSERT_TRUE(db_.Run("DELETE FROM matrix WHERE x > y").ok());
  }

  Database db_;
};

TEST_F(Fig1Test, A_CreationYieldsAllZeros) {
  auto rs = db_.Query("SELECT x, y, v FROM matrix");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 16u);  // all cells exist after creation
  for (size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(rs->Value(r, 2).AsInt64(), 0);
  }
}

TEST_F(Fig1Test, A_StorageMatchesFigure3) {
  // The three BATs of Figure 3.
  auto arr = db_.catalog()->GetArray("matrix");
  ASSERT_TRUE(arr.ok());
  std::vector<int32_t> want_x = {0, 0, 0, 0, 1, 1, 1, 1,
                                 2, 2, 2, 2, 3, 3, 3, 3};
  std::vector<int32_t> want_y = {0, 1, 2, 3, 0, 1, 2, 3,
                                 0, 1, 2, 3, 0, 1, 2, 3};
  EXPECT_EQ((*arr)->dim_bats[0]->ints(), want_x);
  EXPECT_EQ((*arr)->dim_bats[1]->ints(), want_y);
  EXPECT_EQ((*arr)->attr_bats[0]->ints(), std::vector<int32_t>(16, 0));
}

TEST_F(Fig1Test, B_GuardedUpdate) {
  ApplyFig1b();
  // v = x+y if x>y; x-y if x<y; 0 on the diagonal (paper Fig. 1(b)).
  for (int64_t x = 0; x < 4; ++x) {
    for (int64_t y = 0; y < 4; ++y) {
      int64_t want = x > y ? x + y : (x < y ? x - y : 0);
      EXPECT_EQ(At(x, y).AsInt64(), want) << "(" << x << "," << y << ")";
    }
  }
}

TEST_F(Fig1Test, C_InsertOverwritesAndDeletePunchesHoles) {
  ApplyFig1c();
  // Diagonal: x*y.
  EXPECT_EQ(At(0, 0).AsInt64(), 0);
  EXPECT_EQ(At(1, 1).AsInt64(), 1);
  EXPECT_EQ(At(2, 2).AsInt64(), 4);
  EXPECT_EQ(At(3, 3).AsInt64(), 9);
  // x > y: holes (NULL), but the cells still exist.
  EXPECT_TRUE(At(1, 0).is_null);
  EXPECT_TRUE(At(3, 2).is_null);
  // x < y: unchanged from Fig. 1(b).
  EXPECT_EQ(At(0, 3).AsInt64(), -3);
  EXPECT_EQ(At(1, 2).AsInt64(), -1);
  // Cell count unchanged: DELETE on arrays does not remove cells.
  auto rs = db_.Query("SELECT x, y, v FROM matrix");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 16u);
}

TEST_F(Fig1Test, DE_TilingWithHaving) {
  ApplyFig1c();
  auto rs = db_.Query(
      "SELECT [x], [y], AVG(v) FROM matrix "
      "GROUP BY matrix[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // Four anchors: (1,1), (1,3), (3,1), (3,3) — Figure 1(d).
  ASSERT_EQ(rs->NumRows(), 4u);
  std::map<std::pair<int64_t, int64_t>, gdk::ScalarValue> got;
  for (size_t r = 0; r < 4; ++r) {
    got[{rs->Value(r, 0).AsInt64(), rs->Value(r, 1).AsInt64()}] =
        rs->Value(r, 2);
  }
  // Figure 1(e) values.
  ASSERT_TRUE(got.count({1, 1}));
  EXPECT_NEAR((got[{1, 1}]).d, 4.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ((got[{1, 3}]).d, -1.5);
  EXPECT_TRUE((got[{3, 1}]).is_null);  // tile of holes/out-of-range
  EXPECT_DOUBLE_EQ((got[{3, 3}]).d, 9.0);
}

TEST_F(Fig1Test, DE_GridRendering) {
  ApplyFig1c();
  auto rs = db_.Query(
      "SELECT [x], [y], AVG(v) FROM matrix "
      "GROUP BY matrix[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
  ASSERT_TRUE(rs.ok());
  auto grid = rs->ToGrid();
  ASSERT_TRUE(grid.ok());
  // Top row of the rendered grid is y=3: -1.5 at x=1, 9 at x=3.
  std::string first_line = grid->substr(0, grid->find('\n'));
  EXPECT_NE(first_line.find("-1.5"), std::string::npos);
  EXPECT_NE(first_line.find("9"), std::string::npos);
}

TEST_F(Fig1Test, F_DimensionExpansion) {
  ApplyFig1c();
  ASSERT_TRUE(
      db_.Run("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]").ok());
  ASSERT_TRUE(
      db_.Run("ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]").ok());
  auto rs = db_.Query("SELECT x, y, v FROM matrix");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 36u);  // 6x6 (paper Fig. 1(f))
  // Border cells take the DEFAULT 0.
  EXPECT_EQ(At(-1, -1).AsInt64(), 0);
  EXPECT_EQ(At(4, 4).AsInt64(), 0);
  EXPECT_EQ(At(-1, 3).AsInt64(), 0);
  // Interior preserved, including the holes.
  EXPECT_EQ(At(3, 3).AsInt64(), 9);
  EXPECT_EQ(At(0, 3).AsInt64(), -3);
  EXPECT_TRUE(At(1, 0).is_null);
}

TEST_F(Fig1Test, CoercionRoundTrip) {
  ApplyFig1b();
  // Array -> table -> array (paper Sec. 2 "Array and Table Coercions").
  ASSERT_TRUE(db_.Run("CREATE TABLE mtable AS SELECT x, y, v FROM matrix").ok());
  auto cnt = db_.Query("SELECT COUNT(*) AS n FROM mtable");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(cnt->Value(0, 0).AsInt64(), 16);
  ASSERT_TRUE(
      db_.Run("CREATE ARRAY m2 AS SELECT [x], [y], v FROM mtable").ok());
  auto rs = db_.Query(
      "SELECT v FROM m2 WHERE x = 3 AND y = 0");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), 3);
}

TEST_F(Fig1Test, ExplainCreateArrayShowsFigure3Mal) {
  auto text = db_.ExplainText(
      "CREATE ARRAY m3 (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
      "v INT DEFAULT 0)");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("array.series(0, 1, 4, 4, 1)"), std::string::npos);
  EXPECT_NE(text->find("array.series(0, 1, 4, 1, 4)"), std::string::npos);
  EXPECT_NE(text->find("array.filler(16, 0)"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace sciql
