// Structural grouping, relative cell addressing and coercions through the
// full SQL engine.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

class TilingQueryTest : public ::testing::Test {
 protected:
  void MustRun(const std::string& q) {
    Status st = db_.Run(q);
    ASSERT_TRUE(st.ok()) << q << " -> " << st.ToString();
  }
  ResultSet MustQuery(const std::string& q) {
    auto r = db_.Query(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? std::move(r.value()) : ResultSet();
  }

  // 4x4 array with v = x*4 + y (distinct everywhere).
  void MakeGrid() {
    MustRun(
        "CREATE ARRAY g (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
        "v INT DEFAULT 0)");
    MustRun("UPDATE g SET v = x * 4 + y");
  }

  Database db_;
};

TEST_F(TilingQueryTest, FullTileSumOverAllAnchors) {
  MakeGrid();
  ResultSet rs = MustQuery(
      "SELECT [x], [y], SUM(v) AS s FROM g GROUP BY g[x:x+2][y:y+2]");
  ASSERT_EQ(rs.NumRows(), 16u);  // an anchor at every cell
  // Anchor (0,0): cells (0,0)+(0,1)+(1,0)+(1,1) = 0+1+4+5 = 10.
  std::map<std::pair<int64_t, int64_t>, int64_t> got;
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    got[{rs.Value(r, 0).AsInt64(), rs.Value(r, 1).AsInt64()}] =
        rs.Value(r, 2).AsInt64();
  }
  EXPECT_EQ((got[{0, 0}]), 10);
  // Anchor (3,3): only itself (out-of-range ignored) = 15.
  EXPECT_EQ((got[{3, 3}]), 15);
  // Anchor (3, 0): (3,0)+(3,1) = 12 + 13 = 25.
  EXPECT_EQ((got[{3, 0}]), 25);
}

TEST_F(TilingQueryTest, AnchorAttributeIsAccessible) {
  MakeGrid();
  // Non-aggregated v refers to the anchor cell (Game-of-Life idiom).
  ResultSet rs = MustQuery(
      "SELECT [x], [y], SUM(v) - v AS neighbours FROM g "
      "GROUP BY g[x-1:x+2][y-1:y+2] HAVING x = 1 AND y = 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  // 3x3 sum around (1,1) = sum of v for x,y in 0..2 = (0+1+2)+(4+5+6)+(8+9+10)
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 45 - 5);
}

TEST_F(TilingQueryTest, ExplicitCellListPattern) {
  MakeGrid();
  ResultSet rs = MustQuery(
      "SELECT [x], [y], SUM(v) AS s FROM g "
      "GROUP BY g[x][y], g[x-1][y], g[x][y-1] HAVING x = 2 AND y = 2");
  ASSERT_EQ(rs.NumRows(), 1u);
  // cells (2,2)=10, (1,2)=6, (2,1)=9 -> 25.
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 25);
}

TEST_F(TilingQueryTest, MultiplePatternsUnion) {
  MakeGrid();
  // Two single-cell patterns unioned: anchor and right neighbour.
  ResultSet rs = MustQuery(
      "SELECT [x], [y], SUM(v) AS s FROM g GROUP BY g[x][y], g[x+1][y] "
      "HAVING y = 0 AND x = 0");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 0 + 4);
}

TEST_F(TilingQueryTest, CountAndMinMaxOverTiles) {
  MakeGrid();
  MustRun("DELETE FROM g WHERE x = 1 AND y = 1");  // punch a hole
  ResultSet rs = MustQuery(
      "SELECT [x], [y], COUNT(v) AS c, MIN(v) AS lo, MAX(v) AS hi FROM g "
      "GROUP BY g[x:x+2][y:y+2] HAVING x = 0 AND y = 0");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 3);  // hole ignored
  EXPECT_EQ(rs.Value(0, 3).AsInt64(), 0);
  EXPECT_EQ(rs.Value(0, 4).AsInt64(), 4);
}

TEST_F(TilingQueryTest, CellRefExpression) {
  MakeGrid();
  ResultSet rs = MustQuery(
      "SELECT [x], [y], g[x][y] - g[x-1][y] AS dx FROM g "
      "WHERE x = 2 AND y = 3");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 4);  // v(2,3)-v(1,3) = 11-7
}

TEST_F(TilingQueryTest, CellRefOutOfRangeIsNull) {
  MakeGrid();
  ResultSet rs = MustQuery(
      "SELECT [x], [y], g[x-1][y] AS left FROM g WHERE x = 0 AND y = 2");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_TRUE(rs.Value(0, 2).is_null);
}

TEST_F(TilingQueryTest, EdgeDetectionQueryShape) {
  MakeGrid();
  ResultSet rs = MustQuery(
      "SELECT [x], [y], "
      "ABS(g[x][y] - g[x-1][y]) + ABS(g[x][y] - g[x][y-1]) AS e FROM g");
  ASSERT_EQ(rs.NumRows(), 16u);
  std::map<std::pair<int64_t, int64_t>, gdk::ScalarValue> got;
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    got[{rs.Value(r, 0).AsInt64(), rs.Value(r, 1).AsInt64()}] = rs.Value(r, 2);
  }
  EXPECT_TRUE((got[{0, 0}]).is_null);       // border: both neighbours missing
  EXPECT_TRUE((got[{0, 2}]).is_null);       // left column
  EXPECT_EQ((got[{2, 2}]).AsInt64(), 4 + 1);  // |10-6| + |10-9|
}

TEST_F(TilingQueryTest, DownsampleReindexesDimensions) {
  MakeGrid();
  MustRun(
      "CREATE ARRAY small AS "
      "SELECT [x / 2] AS x, [y / 2] AS y, AVG(v) AS v FROM g "
      "GROUP BY g[x:x+2][y:y+2] HAVING x MOD 2 = 0 AND y MOD 2 = 0");
  auto arr = db_.catalog()->GetArray("small");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)->desc.dims()[0].range.Size(), 2u);
  ResultSet rs = MustQuery("SELECT v FROM small WHERE x = 0 AND y = 0");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(rs.Value(0, 0).d, (0 + 1 + 4 + 5) / 4.0);
}

TEST_F(TilingQueryTest, SteppedDimensionTiles) {
  MustRun(
      "CREATE ARRAY s (t INT DIMENSION[0:10:50], v INT DEFAULT 1)");
  // Offsets must be multiples of the step: t:t+20 covers 2 cells.
  ResultSet rs = MustQuery(
      "SELECT [t], SUM(v) AS c FROM s GROUP BY s[t:t+20] HAVING t = 0");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 1).AsInt64(), 2);
  // Misaligned offset errors out.
  EXPECT_FALSE(db_.Query("SELECT [t], SUM(v) FROM s GROUP BY s[t:t+5]").ok());
}

TEST_F(TilingQueryTest, WhereFiltersAnchorsNotTiles) {
  MakeGrid();
  // The tile of anchor (0,0) still sees its full 2x2 neighbourhood even
  // though WHERE restricts the *anchors* to one cell.
  ResultSet rs = MustQuery(
      "SELECT [x], [y], SUM(v) AS s FROM g WHERE x = 0 AND y = 0 "
      "GROUP BY g[x:x+2][y:y+2]");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.Value(0, 2).AsInt64(), 10);  // 0+1+4+5, not just v(0,0)
}

TEST_F(TilingQueryTest, TilingErrors) {
  MakeGrid();
  // Pattern over a different object.
  MustRun("CREATE ARRAY h (x INT DIMENSION[0:1:2], v INT)");
  EXPECT_FALSE(
      db_.Query("SELECT [x], SUM(v) FROM g GROUP BY h[x:x+2]").ok());
  // Dimensionality mismatch.
  EXPECT_FALSE(db_.Query("SELECT [x], SUM(v) FROM g GROUP BY g[x:x+2]").ok());
  // Non-anchored slice expression.
  EXPECT_FALSE(
      db_.Query("SELECT [x], SUM(v) FROM g GROUP BY g[y:y+2][x:x+2]").ok());
  // Structural grouping needs an array.
  MustRun("CREATE TABLE plain (x INT)");
  EXPECT_FALSE(
      db_.Query("SELECT x FROM plain GROUP BY plain[x:x+2]").ok());
}

TEST_F(TilingQueryTest, ValueGroupOnArrayCoercion) {
  MakeGrid();
  MustRun("UPDATE g SET v = x");  // four groups of four
  ResultSet rs = MustQuery(
      "SELECT v, COUNT(*) AS c FROM g GROUP BY v ORDER BY v");
  ASSERT_EQ(rs.NumRows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(rs.Value(r, 1).AsInt64(), 4);
  }
}

}  // namespace
}  // namespace engine
}  // namespace sciql
