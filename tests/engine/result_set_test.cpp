#include "src/engine/result_set.h"

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace sciql {
namespace engine {
namespace {

using gdk::BAT;
using gdk::PhysType;
using gdk::ScalarValue;

ResultSet TwoColumn() {
  ResultSet rs;
  auto a = BAT::Make(PhysType::kInt);
  (void)a->Append(ScalarValue::Int(1));
  (void)a->Append(ScalarValue::Null(PhysType::kInt));
  auto b = BAT::Make(PhysType::kStr);
  (void)b->Append(ScalarValue::Str("hello"));
  (void)b->Append(ScalarValue::Str("w"));
  rs.AddColumn("n", false, a);
  rs.AddColumn("s", false, b);
  return rs;
}

TEST(ResultSetTest, Shape) {
  ResultSet rs = TwoColumn();
  EXPECT_EQ(rs.NumColumns(), 2u);
  EXPECT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.ColumnIndex("S"), 1);  // case-insensitive
  EXPECT_EQ(rs.ColumnIndex("missing"), -1);
  EXPECT_FALSE(rs.IsArrayResult());
}

TEST(ResultSetTest, ToStringAlignsAndMarksNulls) {
  std::string text = TwoColumn().ToString();
  EXPECT_NE(text.find("n |"), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
}

TEST(ResultSetTest, ToStringTruncates) {
  ResultSet rs;
  auto a = BAT::Make(PhysType::kInt);
  for (int i = 0; i < 100; ++i) (void)a->Append(ScalarValue::Int(i));
  rs.AddColumn("v", false, a);
  std::string text = rs.ToString(5);
  EXPECT_NE(text.find("100 rows total"), std::string::npos);
}

TEST(ResultSetTest, EmptyResult) {
  ResultSet rs;
  EXPECT_EQ(rs.NumRows(), 0u);
  EXPECT_NE(rs.ToString().find("empty"), std::string::npos);
}

TEST(ResultSetTest, ToGridRequiresTwoDims) {
  ResultSet rs = TwoColumn();
  EXPECT_FALSE(rs.ToGrid().ok());
}

TEST(ResultSetTest, ToGridRendersYDownward) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE ARRAY g (x INT DIMENSION[0:1:2], "
                     "y INT DIMENSION[0:1:2], v INT DEFAULT 0); "
                     "UPDATE g SET v = x + 10 * y")
                  .ok());
  auto rs = db.Query("SELECT [x], [y], v FROM g");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->IsArrayResult());
  auto grid = rs->ToGrid();
  ASSERT_TRUE(grid.ok());
  // Highest y first: row "10 11", then row "0 1".
  size_t first_newline = grid->find('\n');
  std::string top = grid->substr(0, first_newline);
  EXPECT_NE(top.find("10"), std::string::npos);
  EXPECT_NE(top.find("11"), std::string::npos);
  std::string bottom = grid->substr(first_newline + 1);
  EXPECT_NE(bottom.find("0"), std::string::npos);
}

TEST(ResultSetTest, DistinctThroughEngine) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (v INT, w INT)").ok());
  ASSERT_TRUE(
      db.Run("INSERT INTO t VALUES (1, 1), (1, 1), (2, 1), (1, 2)").ok());
  auto rs = db.Query("SELECT DISTINCT v, w FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 3u);
  rs = db.Query("SELECT DISTINCT v FROM t ORDER BY v DESC");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), 2);
  // ORDER BY a non-output expression under DISTINCT is rejected.
  EXPECT_FALSE(db.Query("SELECT DISTINCT v FROM t ORDER BY w").ok());
}

TEST(ResultSetTest, DistinctWithNulls) {
  Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (NULL), (NULL), (1)").ok());
  auto rs = db.Query("SELECT DISTINCT v FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 2u);  // NULLs collapse into one group
}

}  // namespace
}  // namespace engine
}  // namespace sciql
