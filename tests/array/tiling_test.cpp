#include "src/array/tiling.h"

#include <gtest/gtest.h>

#include "src/array/series.h"
#include "src/common/rng.h"

namespace sciql {
namespace array {
namespace {

using gdk::AggOp;
using gdk::BAT;
using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

ArrayDesc Desc2D(size_t nx, size_t ny) {
  return ArrayDesc({DimDesc{"x", DimRange(0, 1, static_cast<int64_t>(nx)), false},
                    DimDesc{"y", DimRange(0, 1, static_cast<int64_t>(ny)), false}},
                   {AttrDesc{"v", PhysType::kInt, ScalarValue::Int(0)}});
}

TEST(TileSpecTest, FromRangesEnumeratesBox) {
  auto spec = TileSpec::FromRanges({{0, 2}, {0, 2}});
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->rectangular);
  EXPECT_EQ(spec->CellsPerTile(), 4u);
}

TEST(TileSpecTest, EmptySliceRejected) {
  EXPECT_FALSE(TileSpec::FromRanges({{0, 0}}).ok());
  EXPECT_FALSE(TileSpec::FromRanges({{2, 1}}).ok());
}

TEST(TileSpecTest, FromCellsDetectsRectangularity) {
  auto rect = TileSpec::FromCells({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  ASSERT_TRUE(rect.ok());
  EXPECT_TRUE(rect->rectangular);
  auto lshape = TileSpec::FromCells({{0, 0}, {-1, 0}, {0, -1}});
  ASSERT_TRUE(lshape.ok());
  EXPECT_FALSE(lshape->rectangular);
  EXPECT_EQ(lshape->CellsPerTile(), 3u);
}

TEST(TileSpecTest, DuplicateCellsCollapse) {
  auto spec = TileSpec::FromCells({{0, 0}, {0, 0}, {1, 0}});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->CellsPerTile(), 2u);
}

// The paper's Figure 1(d)/(e): 2x2 tiling of the 4x4 matrix with holes.
TEST(TilingTest, PaperFigure1eAverages) {
  ArrayDesc desc = Desc2D(4, 4);
  // Figure 1(c) contents: v(x,y); holes where x > y except diagonal values.
  auto v = BAT::Make(PhysType::kInt);
  v->Resize(16);
  auto set = [&](int64_t x, int64_t y, int32_t val) {
    v->ints()[static_cast<size_t>(x * 4 + y)] = val;
  };
  // Column x=0: 0,-1,-2,-3 (y=0..3); diagonal x=y: 0,1,4,9; x>y: nil.
  set(0, 0, 0); set(0, 1, -1); set(0, 2, -2); set(0, 3, -3);
  set(1, 1, 1); set(1, 2, -1); set(1, 3, -2);
  set(2, 2, 4); set(2, 3, -1);
  set(3, 3, 9);

  auto spec = TileSpec::FromRanges({{0, 2}, {0, 2}});
  ASSERT_TRUE(spec.ok());
  auto avg = NaiveTileAggregate(desc, *v, *spec, AggOp::kAvg);
  ASSERT_TRUE(avg.ok());
  // Anchor (1,1): cells (1,1)=1,(1,2)=-1,(2,1)=nil,(2,2)=4 -> 4/3.
  EXPECT_NEAR((*avg)->dbls()[static_cast<size_t>(1 * 4 + 1)], 4.0 / 3.0, 1e-9);
  // Anchor (1,3): cells (1,3)=-2,(2,3)=-1, rest out of range -> -1.5.
  EXPECT_DOUBLE_EQ((*avg)->dbls()[static_cast<size_t>(1 * 4 + 3)], -1.5);
  // Anchor (3,1): all cells nil or out of range -> NULL.
  EXPECT_TRUE((*avg)->IsNullAt(static_cast<size_t>(3 * 4 + 1)));
  // Anchor (3,3): only (3,3)=9 -> 9.
  EXPECT_DOUBLE_EQ((*avg)->dbls()[static_cast<size_t>(3 * 4 + 3)], 9.0);
}

TEST(TilingTest, SlidingMatchesNaiveOnFigure1e) {
  ArrayDesc desc = Desc2D(4, 4);
  auto v = BAT::Make(PhysType::kInt);
  v->Resize(16);
  v->ints()[5] = 3;
  v->ints()[9] = -2;
  auto spec = TileSpec::FromRanges({{0, 2}, {0, 2}});
  ASSERT_TRUE(spec.ok());
  for (AggOp op : {AggOp::kSum, AggOp::kAvg, AggOp::kCount, AggOp::kMin,
                   AggOp::kMax}) {
    auto naive = NaiveTileAggregate(desc, *v, *spec, op);
    auto sliding = SlidingTileAggregate(desc, *v, *spec, op);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(sliding.ok());
    ASSERT_EQ((*naive)->Count(), (*sliding)->Count());
    for (size_t i = 0; i < (*naive)->Count(); ++i) {
      EXPECT_TRUE((*naive)->GetScalar(i).Equals((*sliding)->GetScalar(i)))
          << "op=" << gdk::AggOpName(op) << " cell " << i << ": "
          << (*naive)->GetScalar(i).ToString() << " vs "
          << (*sliding)->GetScalar(i).ToString();
    }
  }
}

struct TilingSweepParam {
  size_t nx, ny;
  int64_t lo_x, hi_x, lo_y, hi_y;
  double null_rate;
};

class TilingEquivalence : public ::testing::TestWithParam<TilingSweepParam> {};

TEST_P(TilingEquivalence, SlidingEqualsNaive) {
  const TilingSweepParam& p = GetParam();
  ArrayDesc desc = Desc2D(p.nx, p.ny);
  Rng rng(p.nx * 1000 + p.ny);
  auto vi = BAT::Make(PhysType::kInt);
  vi->Resize(p.nx * p.ny);
  for (auto& cell : vi->ints()) {
    if (!rng.Chance(p.null_rate)) {
      cell = static_cast<int32_t>(rng.Range(-50, 50));
    }
  }
  auto vd = BAT::Make(PhysType::kDbl);
  vd->Resize(p.nx * p.ny);
  for (auto& cell : vd->dbls()) {
    if (!rng.Chance(p.null_rate)) cell = rng.NextDouble() * 10 - 5;
  }
  auto spec = TileSpec::FromRanges({{p.lo_x, p.hi_x}, {p.lo_y, p.hi_y}});
  ASSERT_TRUE(spec.ok());
  for (const BATPtr& v : {vi, vd}) {
    for (AggOp op : {AggOp::kSum, AggOp::kAvg, AggOp::kCount, AggOp::kMin,
                     AggOp::kMax}) {
      auto naive = NaiveTileAggregate(desc, *v, *spec, op);
      auto sliding = SlidingTileAggregate(desc, *v, *spec, op);
      ASSERT_TRUE(naive.ok());
      ASSERT_TRUE(sliding.ok());
      for (size_t i = 0; i < (*naive)->Count(); ++i) {
        gdk::ScalarValue a = (*naive)->GetScalar(i);
        gdk::ScalarValue b = (*sliding)->GetScalar(i);
        if (a.type == PhysType::kDbl && !a.is_null && !b.is_null) {
          EXPECT_NEAR(a.d, b.d, 1e-9) << "cell " << i;
        } else {
          EXPECT_TRUE(a.Equals(b))
              << "op=" << gdk::AggOpName(op) << " cell " << i << ": "
              << a.ToString() << " vs " << b.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TilingEquivalence,
    ::testing::Values(
        TilingSweepParam{5, 5, 0, 2, 0, 2, 0.0},
        TilingSweepParam{8, 6, -1, 2, -1, 2, 0.2},
        TilingSweepParam{7, 7, -2, 3, 0, 1, 0.5},
        TilingSweepParam{12, 3, 0, 4, -1, 1, 0.1},
        TilingSweepParam{1, 9, 0, 1, -3, 4, 0.3},
        TilingSweepParam{16, 16, -2, 2, -2, 2, 0.05}));

TEST(TilingTest, NonRectangularEdgeDetectShape) {
  // Upper+left neighbour tile (EdgeDetection support shape).
  ArrayDesc desc = Desc2D(3, 3);
  auto v = BAT::Make(PhysType::kInt);
  v->Resize(9);
  for (size_t i = 0; i < 9; ++i) v->ints()[i] = static_cast<int32_t>(i);
  auto spec = TileSpec::FromCells({{0, 0}, {-1, 0}, {0, -1}});
  ASSERT_TRUE(spec.ok());
  auto sum = TileAggregate(desc, *v, *spec, AggOp::kSum);
  ASSERT_TRUE(sum.ok());
  // Anchor (1,1) = cell 4: cells 4 + 1 (x-1) + 3 (y-1) = 8.
  EXPECT_EQ((*sum)->lngs()[4], 8);
  // Anchor (0,0): only itself.
  EXPECT_EQ((*sum)->lngs()[0], 0);
}

TEST(TilingTest, OneDimensionalWindow) {
  ArrayDesc desc({DimDesc{"t", DimRange(0, 1, 6), false}},
                 {AttrDesc{"v", PhysType::kInt, ScalarValue::Int(0)}});
  auto v = BAT::Make(PhysType::kInt);
  v->ints() = {1, 2, 3, 4, 5, 6};
  auto spec = TileSpec::FromRanges({{-1, 2}});
  ASSERT_TRUE(spec.ok());
  auto sum = TileAggregate(desc, *v, *spec, AggOp::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->lngs(), (std::vector<int64_t>{3, 6, 9, 12, 15, 11}));
}

TEST(TilingTest, CountStarEquivalentOnDenseArray) {
  ArrayDesc desc = Desc2D(3, 3);
  auto v = BAT::Make(PhysType::kInt);
  v->Resize(9);
  for (auto& c : v->ints()) c = 1;
  auto spec = TileSpec::FromRanges({{-1, 2}, {-1, 2}});
  ASSERT_TRUE(spec.ok());
  auto cnt = TileAggregate(desc, *v, *spec, AggOp::kCount);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->lngs()[4], 9);  // centre sees the full 3x3
  EXPECT_EQ((*cnt)->lngs()[0], 4);  // corner sees 2x2
}

TEST(TilingTest, MisalignedValuesRejected) {
  ArrayDesc desc = Desc2D(3, 3);
  auto v = BAT::Make(PhysType::kInt);
  v->Resize(5);
  auto spec = TileSpec::FromRanges({{0, 1}, {0, 1}});
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(TileAggregate(desc, *v, *spec, AggOp::kSum).ok());
}

}  // namespace
}  // namespace array
}  // namespace sciql
