#include "src/array/coerce.h"

#include <gtest/gtest.h>

namespace sciql {
namespace array {
namespace {

using gdk::BAT;
using gdk::PhysType;
using gdk::ScalarValue;

TEST(DeriveRangeTest, UnitSteps) {
  auto b = BAT::Make(PhysType::kInt);
  b->ints() = {3, 1, 2, 1};
  auto r = DeriveRange(*b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, DimRange(1, 1, 4));
}

TEST(DeriveRangeTest, GcdOfGaps) {
  auto b = BAT::Make(PhysType::kInt);
  b->ints() = {0, 10, 30};
  auto r = DeriveRange(*b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, DimRange(0, 10, 40));
}

TEST(DeriveRangeTest, SingleValue) {
  auto b = BAT::Make(PhysType::kInt);
  b->ints() = {7, 7};
  auto r = DeriveRange(*b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, DimRange(7, 1, 8));
}

TEST(DeriveRangeTest, NullRejected) {
  auto b = BAT::Make(PhysType::kInt);
  b->ints() = {1, gdk::kIntNil};
  EXPECT_FALSE(DeriveRange(*b).ok());
  auto e = BAT::Make(PhysType::kInt);
  EXPECT_FALSE(DeriveRange(*e).ok());
}

TEST(TableToArrayTest, FillsHolesWithDefaults) {
  auto xs = BAT::Make(PhysType::kInt);
  xs->ints() = {0, 1, 2};
  auto ys = BAT::Make(PhysType::kInt);
  ys->ints() = {0, 1, 2};
  auto vs = BAT::Make(PhysType::kInt);
  vs->ints() = {10, 11, 12};
  auto r = TableToArray({xs.get(), ys.get()}, {"x", "y"}, {vs.get()}, {"v"},
                        {ScalarValue::Null(PhysType::kInt)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->desc.CellCount(), 9u);
  // Diagonal values present, everything else a hole.
  EXPECT_EQ(r->attr_bats[0]->ints()[0], 10);   // (0,0)
  EXPECT_TRUE(r->attr_bats[0]->IsNullAt(1));   // (0,1)
  EXPECT_EQ(r->attr_bats[0]->ints()[4], 11);   // (1,1)
  EXPECT_EQ(r->attr_bats[0]->ints()[8], 12);   // (2,2)
}

TEST(TableToArrayTest, DuplicateCoordinatesLastWins) {
  auto xs = BAT::Make(PhysType::kInt);
  xs->ints() = {0, 0};
  auto vs = BAT::Make(PhysType::kInt);
  vs->ints() = {1, 2};
  auto r = TableToArray({xs.get()}, {"x"}, {vs.get()}, {"v"},
                        {ScalarValue::Null(PhysType::kInt)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->attr_bats[0]->ints()[0], 2);
}

TEST(TableToArrayTest, NonNullDefault) {
  // Values {0, 1, 3}: the gcd of the gaps is 1, so the derived range is
  // [0:1:4) and the missing cell x=2 takes the attribute default.
  auto xs = BAT::Make(PhysType::kInt);
  xs->ints() = {0, 1, 3};
  auto vs = BAT::Make(PhysType::kInt);
  vs->ints() = {5, 6, 7};
  auto r = TableToArray({xs.get()}, {"x"}, {vs.get()}, {"v"},
                        {ScalarValue::Int(-1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->attr_bats[0]->ints(), (std::vector<int32_t>{5, 6, -1, 7}));
}

TEST(TableToArrayTest, SparseValuesDeriveSteppedRange) {
  // Values {0, 2}: step 2 is derived, so the array has exactly two cells.
  auto xs = BAT::Make(PhysType::kInt);
  xs->ints() = {0, 2};
  auto vs = BAT::Make(PhysType::kInt);
  vs->ints() = {5, 6};
  auto r = TableToArray({xs.get()}, {"x"}, {vs.get()}, {"v"},
                        {ScalarValue::Int(-1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->desc.dims()[0].range, DimRange(0, 2, 4));
  EXPECT_EQ(r->attr_bats[0]->ints(), (std::vector<int32_t>{5, 6}));
}

TEST(TableToArrayTest, DimensionBatsMaterialised) {
  auto xs = BAT::Make(PhysType::kInt);
  xs->ints() = {1, 2};
  auto ys = BAT::Make(PhysType::kInt);
  ys->ints() = {0, 1};
  auto r = TableToArray({xs.get(), ys.get()}, {"x", "y"}, {}, {}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dim_bats[0]->ints(), (std::vector<int32_t>{1, 1, 2, 2}));
  EXPECT_EQ(r->dim_bats[1]->ints(), (std::vector<int32_t>{0, 1, 0, 1}));
}

}  // namespace
}  // namespace array
}  // namespace sciql
