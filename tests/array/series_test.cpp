#include "src/array/series.h"

#include <gtest/gtest.h>

namespace sciql {
namespace array {
namespace {

using gdk::BATPtr;
using gdk::PhysType;
using gdk::ScalarValue;

TEST(SeriesTest, PaperFigure3XSeries) {
  // x: array.series(0,1,4,4,1) -> 0 0 0 0 1 1 1 1 2 2 2 2 3 3 3 3
  BATPtr x = Series(DimRange(0, 1, 4), 4, 1);
  std::vector<int32_t> want = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3};
  EXPECT_EQ(x->ints(), want);
}

TEST(SeriesTest, PaperFigure3YSeries) {
  // y: array.series(0,1,4,1,4) -> 0 1 2 3 0 1 2 3 0 1 2 3 0 1 2 3
  BATPtr y = Series(DimRange(0, 1, 4), 1, 4);
  std::vector<int32_t> want = {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3};
  EXPECT_EQ(y->ints(), want);
}

TEST(SeriesTest, FillerMatchesPaper) {
  // v: array.filler(16,0)
  BATPtr v = Filler(16, ScalarValue::Int(0));
  EXPECT_EQ(v->Count(), 16u);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(v->ints()[i], 0);
}

TEST(SeriesTest, SteppedAndNegativeRanges) {
  BATPtr s = Series(DimRange(10, -5, -1), 1, 1);  // 10, 5, 0
  EXPECT_EQ(s->ints(), (std::vector<int32_t>{10, 5, 0}));
  BATPtr t = Series(DimRange(2, 3, 10), 2, 2);  // 2,2,5,5,8,8 twice
  EXPECT_EQ(t->ints(),
            (std::vector<int32_t>{2, 2, 5, 5, 8, 8, 2, 2, 5, 5, 8, 8}));
}

TEST(SeriesTest, MaterializeDimDerivesRepetitions) {
  ArrayDesc desc({DimDesc{"x", DimRange(0, 1, 2), false},
                  DimDesc{"y", DimRange(0, 1, 3), false}},
                 {});
  BATPtr x = MaterializeDim(desc, 0);
  BATPtr y = MaterializeDim(desc, 1);
  EXPECT_EQ(x->ints(), (std::vector<int32_t>{0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(y->ints(), (std::vector<int32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(CellPositionsTest, MapsValuesAndRejectsOutOfRange) {
  ArrayDesc desc({DimDesc{"x", DimRange(0, 1, 4), false},
                  DimDesc{"y", DimRange(0, 1, 4), false}},
                 {});
  auto xs = gdk::BAT::Make(PhysType::kInt);
  xs->ints() = {0, 3, 4, gdk::kIntNil};
  auto ys = gdk::BAT::Make(PhysType::kInt);
  ys->ints() = {0, 3, 0, 1};
  auto pos = CellPositions(desc, {xs.get(), ys.get()});
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ((*pos)->oids()[0], 0u);
  EXPECT_EQ((*pos)->oids()[1], 15u);
  EXPECT_EQ((*pos)->oids()[2], gdk::kOidNil);  // x=4 out of range
  EXPECT_EQ((*pos)->oids()[3], gdk::kOidNil);  // null dimension value
}

TEST(CellPositionsTest, SteppedDimension) {
  ArrayDesc desc({DimDesc{"t", DimRange(100, 10, 150), false}}, {});
  auto ts = gdk::BAT::Make(PhysType::kInt);
  ts->ints() = {100, 120, 125};
  auto pos = CellPositions(desc, {ts.get()});
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ((*pos)->oids()[0], 0u);
  EXPECT_EQ((*pos)->oids()[1], 2u);
  EXPECT_EQ((*pos)->oids()[2], gdk::kOidNil);  // off-grid
}

TEST(ScatterTest, OverwritesAndSkipsNilPositions) {
  auto attr = Filler(4, ScalarValue::Int(0));
  auto pos = gdk::BAT::Make(PhysType::kOid);
  pos->oids() = {1, gdk::kOidNil, 3};
  auto vals = gdk::BAT::Make(PhysType::kInt);
  vals->ints() = {11, 22, 33};
  ASSERT_TRUE(ScatterIntoAttr(attr.get(), *pos, *vals).ok());
  EXPECT_EQ(attr->ints(), (std::vector<int32_t>{0, 11, 0, 33}));
}

TEST(ScatterTest, OutOfBoundsPositionFails) {
  auto attr = Filler(2, ScalarValue::Int(0));
  auto pos = gdk::BAT::Make(PhysType::kOid);
  pos->oids() = {5};
  auto vals = gdk::BAT::Make(PhysType::kInt);
  vals->ints() = {1};
  EXPECT_FALSE(ScatterIntoAttr(attr.get(), *pos, *vals).ok());
}

TEST(ScatterTest, ConstScatter) {
  auto attr = Filler(3, ScalarValue::Int(7));
  auto pos = gdk::BAT::Make(PhysType::kOid);
  pos->oids() = {0, 2};
  ASSERT_TRUE(ScatterConstIntoAttr(attr.get(), *pos,
                                   ScalarValue::Null(PhysType::kInt))
                  .ok());
  EXPECT_TRUE(attr->IsNullAt(0));
  EXPECT_EQ(attr->ints()[1], 7);
  EXPECT_TRUE(attr->IsNullAt(2));
}

}  // namespace
}  // namespace array
}  // namespace sciql
