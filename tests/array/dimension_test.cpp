#include "src/array/dimension.h"

#include <gtest/gtest.h>

#include "src/array/descriptor.h"

namespace sciql {
namespace array {
namespace {

TEST(DimRangeTest, SizeRightOpen) {
  EXPECT_EQ(DimRange(0, 1, 4).Size(), 4u);
  EXPECT_EQ(DimRange(0, 2, 5).Size(), 3u);  // 0,2,4
  EXPECT_EQ(DimRange(-1, 1, 5).Size(), 6u);
  EXPECT_EQ(DimRange(3, 1, 3).Size(), 0u);
  EXPECT_EQ(DimRange(5, 1, 3).Size(), 0u);
}

TEST(DimRangeTest, NegativeStep) {
  DimRange r(10, -2, 4);  // 10, 8, 6
  EXPECT_EQ(r.Size(), 3u);
  EXPECT_EQ(r.ValueAt(0), 10);
  EXPECT_EQ(r.ValueAt(2), 6);
  EXPECT_TRUE(r.Contains(8));
  EXPECT_FALSE(r.Contains(4));  // stop is exclusive
  EXPECT_FALSE(r.Contains(7));  // off-grid
}

TEST(DimRangeTest, ContainsAndIndexOf) {
  DimRange r(0, 2, 10);
  EXPECT_TRUE(r.Contains(0));
  EXPECT_TRUE(r.Contains(8));
  EXPECT_FALSE(r.Contains(10));
  EXPECT_FALSE(r.Contains(3));
  EXPECT_FALSE(r.Contains(-2));
  ASSERT_TRUE(r.IndexOf(6).ok());
  EXPECT_EQ(r.IndexOf(6).value(), 3u);
  EXPECT_FALSE(r.IndexOf(7).ok());
  EXPECT_EQ(r.IndexOfOrNeg(7), -1);
}

TEST(DimRangeTest, ZeroStepInvalid) {
  EXPECT_FALSE(DimRange(0, 0, 4).Validate().ok());
  EXPECT_TRUE(DimRange(0, 1, 4).Validate().ok());
}

TEST(DimRangeTest, ToStringMatchesDdl) {
  EXPECT_EQ(DimRange(-1, 1, 5).ToString(), "[-1:1:5]");
}

TEST(ArrayDescTest, Fig3Linearisation) {
  // The paper's 4x4 matrix: first dimension (x) varies slowest.
  ArrayDesc desc({DimDesc{"x", DimRange(0, 1, 4), false},
                  DimDesc{"y", DimRange(0, 1, 4), false}},
                 {AttrDesc{"v", gdk::PhysType::kInt,
                           gdk::ScalarValue::Int(0)}});
  EXPECT_EQ(desc.CellCount(), 16u);
  EXPECT_EQ(desc.Strides(), (std::vector<size_t>{4, 1}));
  EXPECT_EQ(desc.LinearIndex({0, 3}), 3u);
  EXPECT_EQ(desc.LinearIndex({1, 0}), 4u);
  EXPECT_EQ(desc.CoordsOf(5), (std::vector<size_t>{1, 1}));
  EXPECT_EQ(desc.CellPosOfValues({2, 3}), 11);
  EXPECT_EQ(desc.CellPosOfValues({4, 0}), -1);
}

TEST(ArrayDescTest, NameLookupIsCaseInsensitive) {
  ArrayDesc desc({DimDesc{"x", DimRange(0, 1, 2), false}},
                 {AttrDesc{"v", gdk::PhysType::kInt,
                           gdk::ScalarValue::Null(gdk::PhysType::kInt)}});
  EXPECT_EQ(desc.DimIndex("X"), 0);
  EXPECT_EQ(desc.AttrIndex("V"), 0);
  EXPECT_EQ(desc.DimIndex("z"), -1);
}

TEST(ArrayDescTest, ThreeDimensionalStrides) {
  ArrayDesc desc({DimDesc{"a", DimRange(0, 1, 2), false},
                  DimDesc{"b", DimRange(0, 1, 3), false},
                  DimDesc{"c", DimRange(0, 1, 5), false}},
                 {});
  EXPECT_EQ(desc.CellCount(), 30u);
  EXPECT_EQ(desc.Strides(), (std::vector<size_t>{15, 5, 1}));
  EXPECT_EQ(desc.CoordsOf(22), (std::vector<size_t>{1, 1, 2}));
}

}  // namespace
}  // namespace array
}  // namespace sciql
