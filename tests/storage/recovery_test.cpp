// Crash recovery: a database destroyed without a checkpoint (simulated
// crash) recovers every committed statement from the WAL on reopen; a torn
// WAL tail (crash mid-append) is discarded and the reopened database returns
// bit-identical results for the committed prefix.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/storage/file_io.h"
#include "src/storage/storage_engine.h"
#include "tests/support/golden_format.h"

namespace sciql {
namespace storage {
namespace {

namespace fs = std::filesystem;

using engine::Database;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> QueryRows(Database* db, const std::string& sql) {
  auto rs = db->Query(sql);
  EXPECT_TRUE(rs.ok()) << sql << ": " << rs.status().ToString();
  std::vector<std::string> rows;
  if (!rs.ok()) return rows;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    rows.push_back(testsupport::RenderGoldenRow(*rs, r));
  }
  return rows;
}

TEST(RecoveryTest, CrashWithoutCheckpointReplaysWal) {
  std::string dir = FreshDir("rec_nockpt");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT, s VARCHAR)").ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
    ASSERT_TRUE(db.Run("UPDATE t SET s = 'bee' WHERE k = 2").ok());
    // Crash: the Database is destroyed without Checkpoint or Close.
  }
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_EQ(db2.storage_engine()->stats().wal_replayed, 3u);
  EXPECT_EQ(QueryRows(&db2, "SELECT k, s FROM t ORDER BY k"),
            (std::vector<std::string>{"1|a", "2|bee"}));
}

TEST(RecoveryTest, TornWalTailDiscardsOnlyTheUncommittedRecord) {
  std::string dir = FreshDir("rec_torn");
  // The committed prefix, also applied to an in-memory reference database so
  // the recovered results can be compared statement-for-statement.
  std::vector<std::string> committed = {
      "CREATE TABLE t (k INT, v DOUBLE, s VARCHAR)",
      "INSERT INTO t VALUES (3, 0.25, 'c'), (1, NULL, 'a')",
      "INSERT INTO t VALUES (2, -0.0, NULL)",
      "UPDATE t SET v = v * 4 WHERE k = 3",
  };
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    for (const std::string& sql : committed) {
      ASSERT_TRUE(db.Run(sql).ok()) << sql;
    }
    // One more statement commits to the WAL...
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (99, 9.9, 'torn')").ok());
  }
  // ...but the crash tears its record: cut the WAL mid-way through the last
  // record's payload.
  fs::path wal = fs::path(dir) / "wal.log";
  uintmax_t size = fs::file_size(wal);
  fs::resize_file(wal, size - 8);

  Database recovered;
  ASSERT_TRUE(recovered.Open(dir).ok());
  EXPECT_EQ(recovered.storage_engine()->stats().wal_replayed,
            committed.size());
  EXPECT_GT(recovered.storage_engine()->stats().wal_discarded_bytes, 0u);

  // Reference: the committed prefix applied in memory.
  Database reference;
  for (const std::string& sql : committed) {
    ASSERT_TRUE(reference.Run(sql).ok());
  }
  for (const char* probe :
       {"SELECT k, v, s FROM t ORDER BY k",
        "SELECT COUNT(*), MIN(v), MAX(v) FROM t",
        "SELECT s FROM t WHERE v IS NULL"}) {
    EXPECT_EQ(QueryRows(&recovered, probe), QueryRows(&reference, probe))
        << probe;
  }
  // The torn row is gone entirely.
  EXPECT_EQ(QueryRows(&recovered, "SELECT COUNT(*) FROM t WHERE k = 99"),
            (std::vector<std::string>{"0"}));
}

TEST(RecoveryTest, WalOnTopOfCheckpointReplaysOnlyTheDelta) {
  std::string dir = FreshDir("rec_delta");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (2)").ok());
    // Crash after one post-checkpoint statement.
  }
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_EQ(db2.storage_engine()->stats().wal_replayed, 1u);
  EXPECT_EQ(QueryRows(&db2, "SELECT k FROM t ORDER BY k"),
            (std::vector<std::string>{"1", "2"}));
  // Recovery is idempotent across repeated crashes: reopen again without a
  // checkpoint and the same WAL delta replays onto the same checkpoint.
  {
    Database db3;
    ASSERT_TRUE(db3.Open(dir).ok());
    EXPECT_EQ(QueryRows(&db3, "SELECT k FROM t ORDER BY k"),
              (std::vector<std::string>{"1", "2"}));
  }
}

TEST(RecoveryTest, StaleLogFromInterruptedCheckpointIsNotReplayed) {
  // A checkpoint switches to a fresh epoch-stamped WAL whose name is
  // committed inside the manifest; removing the old log happens after. If a
  // crash leaves the old log behind, its statements are already folded into
  // the heaps and must NOT replay (double-apply).
  std::string dir = FreshDir("rec_stale_log");
  std::string stale;
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT); INSERT INTO t VALUES (1)").ok());
    auto bytes = ReadWholeFile((fs::path(dir) / "wal.log").string());
    ASSERT_TRUE(bytes.ok());
    stale = *bytes;  // the pre-checkpoint log, with both statements
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // Simulate the crash window: the old log re-appears on disk.
  ASSERT_TRUE(WriteFileAtomic((fs::path(dir) / "wal.log").string(), stale).ok());

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_EQ(db2.storage_engine()->stats().wal_replayed, 0u);
  EXPECT_EQ(QueryRows(&db2, "SELECT COUNT(*) FROM t"),
            (std::vector<std::string>{"1"}));  // not doubled
  // The next checkpoint sweeps the orphaned log.
  ASSERT_TRUE(db2.Run("INSERT INTO t VALUES (2)").ok());
  ASSERT_TRUE(db2.Checkpoint().ok());
  EXPECT_FALSE(fs::exists(fs::path(dir) / "wal.log"));
}

TEST(RecoveryTest, CorruptManifestFailsCleanly) {
  std::string dir = FreshDir("rec_manifest");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    std::fstream f(fs::path(dir) / "MANIFEST",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\x7f');
  }
  Database db;
  Status st = db.Open(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  // The failed open leaves a clean, usable in-memory session.
  ASSERT_TRUE(db.Run("CREATE TABLE u (v INT)").ok());
}

TEST(RecoveryTest, CorruptHeapFileFailsCleanlyOnTouch) {
  std::string dir = FreshDir("rec_heap");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT); "
                       "INSERT INTO t VALUES (1), (2), (3)")
                    .ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // Flip a payload byte in t's heap file.
  for (const auto& entry : fs::directory_iterator(fs::path(dir) / "heaps")) {
    if (entry.path().extension() == ".heap") {
      std::fstream f(entry.path(),
                     std::ios::binary | std::ios::in | std::ios::out);
      f.seekp(25);
      f.put('\x55');
    }
  }
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());  // manifest is fine; load is lazy
  auto rs = db.Query("SELECT k FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace storage
}  // namespace sciql
