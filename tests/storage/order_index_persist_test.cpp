// Persisted order indexes: a column's BAT::order_index is written alongside
// its heap at checkpoint, revalidated on load, and a reopened database
// serves ORDER BY and MIN/MAX through the index path without rebuilding it
// (pinned via gdk::KernelTelemetry). Corrupt or stale indexes are rejected
// by revalidation and rebuilt, never trusted.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/common/rng.h"
#include "src/engine/database.h"
#include "src/gdk/kernels.h"

#include "tests/support/telemetry_probe.h"
#include "src/storage/file_io.h"
#include "src/storage/storage_engine.h"
#include "tests/support/golden_format.h"

namespace sciql {
namespace storage {
namespace {

namespace fs = std::filesystem;

using engine::Database;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> QueryRows(Database* db, const std::string& sql) {
  auto rs = db->Query(sql);
  EXPECT_TRUE(rs.ok()) << sql << ": " << rs.status().ToString();
  std::vector<std::string> rows;
  if (!rs.ok()) return rows;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    rows.push_back(testsupport::RenderGoldenRow(*rs, r));
  }
  return rows;
}

// Populate t(k INT) with `n` deterministic values including duplicates and a
// couple of NULLs, in a handful of multi-row INSERT statements.
void Populate(Database* db, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string values;
  size_t in_stmt = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!values.empty()) values += ", ";
    if (i % 97 == 13) {
      values += "(NULL)";
    } else {
      values += "(" + std::to_string(rng.Range(-1000, 1000)) + ")";
    }
    if (++in_stmt == 64 || i + 1 == n) {
      ASSERT_TRUE(db->Run("INSERT INTO t VALUES " + values).ok());
      values.clear();
      in_stmt = 0;
    }
  }
}

TEST(OrderIndexPersistTest, ReopenedDatabaseServesOrderByAndMinMaxFromIndex) {
  std::string dir = FreshDir("oidx_serve");
  std::vector<std::string> before;
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    Populate(&db, 300, 42);
    testsupport::TestProbe().Rebase();
    before = QueryRows(&db, "SELECT k FROM t ORDER BY k");
    EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
    ASSERT_TRUE(db.Checkpoint().ok());
  }

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  testsupport::TestProbe().Rebase();
  std::vector<std::string> after = QueryRows(&db2, "SELECT k FROM t ORDER BY k");
  EXPECT_EQ(after, before);  // bit-identical rendered rows across reopen
  // Served by the persisted index: adopted from disk, never rebuilt.
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_loaded, 1u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_loaded, 1u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_rejected, 0u);

  // MIN/MAX also ride the loaded index (endpoint reads, no scan, no build).
  uint64_t minmax_before = testsupport::TestProbe().delta().minmax_index;
  std::vector<std::string> mm = QueryRows(&db2, "SELECT MIN(k), MAX(k) FROM t");
  ASSERT_EQ(mm.size(), 1u);
  EXPECT_GT(testsupport::TestProbe().delta().minmax_index, minmax_before);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);

  // Top-k rides it too: FirstN's index-window fast path.
  uint64_t window_before = testsupport::TestProbe().delta().firstn_index_window;
  std::vector<std::string> top =
      QueryRows(&db2, "SELECT k FROM t ORDER BY k LIMIT 5");
  EXPECT_EQ(top, std::vector<std::string>(before.begin(), before.begin() + 5));
  EXPECT_GT(testsupport::TestProbe().delta().firstn_index_window, window_before);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
}

TEST(OrderIndexPersistTest, CorruptIndexIsRejectedAndRebuilt) {
  std::string dir = FreshDir("oidx_corrupt");
  std::vector<std::string> before;
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    Populate(&db, 200, 7);
    before = QueryRows(&db, "SELECT k FROM t ORDER BY k");
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // Corrupt the persisted index payload. Also patch the checksum so only
  // semantic revalidation (not the block checksum) can catch it: swap the
  // last two index entries, which keeps a valid permutation but breaks the
  // unique total order (even on a value tie the row-id tie-break inverts).
  size_t flipped = 0;
  for (const auto& entry : fs::directory_iterator(fs::path(dir) / "heaps")) {
    if (entry.path().extension() != ".oidx") continue;
    auto bytes = ReadWholeFile(entry.path().string());
    ASSERT_TRUE(bytes.ok());
    std::string img = *bytes;
    ASSERT_GT(img.size(), 24u + 16u);
    std::string payload = img.substr(24);
    size_t a = payload.size() - 16;
    size_t b = payload.size() - 8;
    std::string last = payload.substr(b, 8);
    payload.replace(b, 8, payload.substr(a, 8));
    payload.replace(a, 8, last);
    uint64_t checksum = Checksum64(payload);
    std::string fixed = img.substr(0, 16);
    fixed.append(reinterpret_cast<const char*>(&checksum), 8);
    fixed += payload;
    ASSERT_TRUE(WriteFileAtomic(entry.path().string(), fixed).ok());
    ++flipped;
  }
  ASSERT_EQ(flipped, 1u);

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  testsupport::TestProbe().Rebase();
  EXPECT_EQ(QueryRows(&db2, "SELECT k FROM t ORDER BY k"), before);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_rejected, 1u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_loaded, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);  // rebuilt from data
}

TEST(OrderIndexPersistTest, IndexBuiltOnCleanColumnPersistsWithoutHeapRewrite) {
  std::string dir = FreshDir("oidx_clean");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    Populate(&db, 150, 3);
    ASSERT_TRUE(db.Checkpoint().ok());  // heap on disk, no index yet
    QueryRows(&db, "SELECT k FROM t ORDER BY k");  // builds + caches
    ASSERT_TRUE(db.Checkpoint().ok());
    // The data was clean: nothing rewritten, but the index was persisted.
    EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_written, 0u);
    EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_clean, 1u);
  }
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  testsupport::TestProbe().Rebase();
  QueryRows(&db2, "SELECT k FROM t ORDER BY k");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_loaded, 1u);
}

// A reopened database serves ORDER BY x DESC and multi-key ORDER BY through
// the persisted keyed indexes with zero rebuilds: the canonical builds are
// adopted from disk and the descending specs derive by run reversal.
TEST(OrderIndexPersistTest, ReopenServesDescAndMultiKeyWithZeroRebuilds) {
  std::string dir = FreshDir("oidx_spec_serve");
  std::vector<std::string> desc_rows, multi_rows;
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (a INT, b INT)").ok());
    Rng rng(99);
    for (int chunk = 0; chunk < 4; ++chunk) {
      std::string values;
      for (int i = 0; i < 50; ++i) {
        if (!values.empty()) values += ", ";
        values += "(" + std::to_string(rng.Range(0, 9)) + ", " +
                  std::to_string(rng.Range(-500, 500)) + ")";
      }
      ASSERT_TRUE(db.Run("INSERT INTO t VALUES " + values).ok());
    }
    testsupport::TestProbe().Rebase();
    desc_rows = QueryRows(&db, "SELECT a FROM t ORDER BY a DESC");
    multi_rows = QueryRows(&db, "SELECT a, b FROM t ORDER BY a, b DESC");
    // One canonical single-key build (reversed for DESC) + one multi-key.
    EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 2u);
    EXPECT_EQ(testsupport::TestProbe().delta().order_index_built_multi, 1u);
    ASSERT_TRUE(db.Checkpoint().ok());
  }

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  testsupport::TestProbe().Rebase();
  EXPECT_EQ(QueryRows(&db2, "SELECT a FROM t ORDER BY a DESC"), desc_rows);
  EXPECT_EQ(QueryRows(&db2, "SELECT a, b FROM t ORDER BY a, b DESC"),
            multi_rows);
  // Both specs served from disk: zero sorts after reopen.
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_loaded, 2u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_loaded_multi, 1u);
  EXPECT_GE(testsupport::TestProbe().delta().order_index_reversed, 1u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_loaded, 2u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_rejected, 0u);
}

// Keyed dirty tracking: building a second spec on a clean column rewrites
// only the spec container file — the heap is untouched — and an unchanged
// set of live builds rewrites nothing at all.
TEST(OrderIndexPersistTest, SecondSpecRewritesOnlyTheIndexFile) {
  std::string dir = FreshDir("oidx_spec_dirty");
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE t (a INT, b INT)").ok());
  {
    Rng rng(5);
    std::string values;
    for (int i = 0; i < 120; ++i) {
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(rng.Range(0, 20)) + ", " +
                std::to_string(rng.Range(-100, 100)) + ")";
    }
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES " + values).ok());
  }
  QueryRows(&db, "SELECT a FROM t ORDER BY a");  // spec 1: (a asc)
  ASSERT_TRUE(db.Checkpoint().ok());

  auto files_by_ext = [&](const char* ext) {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(fs::path(dir) / "heaps")) {
      if (e.path().extension() == ext) out.push_back(e.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::string> heaps_before = files_by_ext(".heap");
  std::vector<std::string> oidx_before = files_by_ext(".oidx");
  ASSERT_EQ(oidx_before.size(), 1u);

  // Build a second spec on the (clean) column and checkpoint again.
  QueryRows(&db, "SELECT a, b FROM t ORDER BY a, b");  // spec 2: (a, b)
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_written, 0u);
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_index_files_written, 1u);
  EXPECT_EQ(files_by_ext(".heap"), heaps_before);  // heaps untouched
  std::vector<std::string> oidx_after = files_by_ext(".oidx");
  ASSERT_EQ(oidx_after.size(), 1u);
  EXPECT_NE(oidx_after, oidx_before);  // container rewritten (fresh epoch)

  // Nothing changed since: the next checkpoint writes no index files.
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_index_files_written, 0u);
  EXPECT_EQ(files_by_ext(".oidx"), oidx_after);

  // Both specs are in the one container: a reopen adopts two indexes.
  ASSERT_TRUE(db.Close().ok());
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  testsupport::TestProbe().Rebase();
  QueryRows(&db2, "SELECT a, b FROM t ORDER BY a, b");
  QueryRows(&db2, "SELECT a FROM t ORDER BY a");
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_loaded, 2u);
}

TEST(OrderIndexPersistTest, MutationDropsThePersistedIndex) {
  std::string dir = FreshDir("oidx_stale");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    Populate(&db, 100, 11);
    QueryRows(&db, "SELECT k FROM t ORDER BY k");
    ASSERT_TRUE(db.Checkpoint().ok());  // index persisted
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (-5000)").ok());  // invalidates
    ASSERT_TRUE(db.Checkpoint().ok());  // heap rewritten, no index anymore
  }
  // No .oidx file survives for a column whose index was invalidated.
  for (const auto& entry : fs::directory_iterator(fs::path(dir) / "heaps")) {
    EXPECT_NE(entry.path().extension(), ".oidx") << entry.path();
  }
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  testsupport::TestProbe().Rebase();
  std::vector<std::string> rows = QueryRows(&db2, "SELECT k FROM t ORDER BY k");
  ASSERT_GT(rows.size(), 2u);
  EXPECT_EQ(rows[0], "null");      // NULLs sort first...
  EXPECT_EQ(rows[1], "-5000");     // ...then the post-checkpoint insert
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  EXPECT_EQ(db2.storage_engine()->stats().order_indexes_loaded, 0u);
}

}  // namespace
}  // namespace storage
}  // namespace sciql
