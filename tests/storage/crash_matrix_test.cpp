// The crash-point matrix: enumerate every mutating filesystem operation the
// storage engine issues over a representative workload (inserts, updates,
// deletes, two checkpoints), then replay the workload once per operation with
// a simulated power cut at exactly that operation — the op has no effect (or,
// in the torn-write flavor, a write lands only half its bytes) and every
// later write is a failing no-op. Reopening the directory with the real
// filesystem must then recover a database equal to either the pre- or the
// post-commit state of the in-flight statement — never a hybrid, never less
// than the acknowledged prefix — and a clean checkpoint must succeed on the
// recovered database.
//
// Because the engine's I/O is deterministic, one fault-free counting pass
// yields the full operation schedule; crashing at every index k in [0, N)
// visits every distinct reachable disk state.

#include <gtest/gtest.h>

#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/storage/fault_env.h"
#include "tests/support/crash_workload.h"

namespace sciql {
namespace storage {
namespace {

namespace fs = std::filesystem;

using engine::Database;
using testsupport::CrashOutcome;
using testsupport::ListTmpFiles;
using testsupport::ReferenceSnapshots;
using testsupport::RunCrashWorkload;
using testsupport::StorageSnapshot;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// One fault-free pass over the workload through the counting env: the
// operation schedule every crash replay below indexes into.
std::vector<FaultInjectingEnv::OpRecord> CountOperations() {
  std::string dir = FreshDir("crash_count");
  FaultInjectingEnv env;
  Database db;
  CrashOutcome out = RunCrashWorkload(dir, {&env}, &db);
  EXPECT_EQ(out.failed_step, CrashOutcome::kNoFailure)
      << "fault-free pass failed at step " << out.failed_step << ": "
      << out.error.ToString();
  return env.ops();
}

TEST(CrashMatrixTest, WorkloadCoversEveryMutatingOperationKind) {
  std::vector<FaultInjectingEnv::OpRecord> ops = CountOperations();

  std::map<FaultInjectingEnv::OpKind, int> by_kind;
  for (const auto& op : ops) by_kind[op.kind]++;
  std::string breakdown;
  for (const auto& [kind, count] : by_kind) {
    breakdown += std::string(FaultInjectingEnv::OpKindName(kind)) + "=" +
                 std::to_string(count) + " ";
  }
  // The matrix size the CI job greps for.
  std::cout << "crash matrix: " << ops.size()
            << " operations (" << breakdown << ")" << std::endl;

  // The issue's floor, and proof the workload reaches every op kind the
  // engine can issue (every write, fsync and rename is a crash point).
  EXPECT_GE(ops.size(), 50u);
  using Op = FaultInjectingEnv::OpKind;
  for (Op kind : {Op::kCreate, Op::kWrite, Op::kFsync, Op::kRename,
                  Op::kRemove, Op::kMkdir, Op::kSyncDir}) {
    EXPECT_GT(by_kind[kind], 0)
        << "workload never issues " << FaultInjectingEnv::OpKindName(kind);
  }
}

// Replay the workload with a crash at operation k, then verify the recovered
// directory with the real filesystem. `partial` additionally lands half of
// the crashed write's bytes first (torn write).
void RunCrashPoint(uint64_t k, bool partial,
                   const std::vector<std::vector<std::string>>& refs) {
  SCOPED_TRACE("crash at op " + std::to_string(k) +
               (partial ? " (torn write)" : ""));
  std::string dir =
      FreshDir("crash_k" + std::to_string(k) + (partial ? "p" : ""));

  FaultInjectingEnv env;
  env.CrashAtOperation(k, partial);
  CrashOutcome out;
  {
    Database db;
    out = RunCrashWorkload(dir, {&env}, &db);
    // The crash op is reached (k is within the fault-free schedule), so some
    // step must fail: either Open itself or a statement/checkpoint. The
    // session object is destroyed afterwards — the "process dies".
    ASSERT_TRUE(env.crashed());
    ASSERT_NE(out.failed_step, CrashOutcome::kNoFailure);
    EXPECT_EQ(out.error.code(), Status::Code::kIOError) << out.error.ToString();
  }

  // Recovery with the real filesystem must always succeed...
  Database db2;
  Status reopened = db2.Open(dir);
  ASSERT_TRUE(reopened.ok())
      << "recovery failed after crash at op " << k << " ("
      << FaultInjectingEnv::OpKindName(env.ops()[k].kind) << " of "
      << env.ops()[k].path << "): " << reopened.ToString();

  // ...to exactly the pre- or post-commit state of the in-flight statement.
  std::vector<std::string> recovered = StorageSnapshot(&db2);
  const std::vector<std::string>& pre = refs[out.committed];
  const std::vector<std::string>& post =
      refs[out.committed + (out.in_flight_mutation ? 1 : 0)];
  EXPECT_TRUE(recovered == pre || recovered == post)
      << "recovered state is neither the pre- nor the post-commit state of "
      << "the in-flight statement (committed=" << out.committed
      << ", failed step=" << out.failed_step << ", crash op="
      << FaultInjectingEnv::OpKindName(env.ops()[k].kind) << " of "
      << env.ops()[k].path << ")";

  // A clean re-checkpoint succeeds and leaves no temp-file debris; the state
  // survives another reopen bit-identically.
  ASSERT_TRUE(db2.Checkpoint().ok());
  EXPECT_TRUE(ListTmpFiles(dir).empty());
  Database db3;
  ASSERT_TRUE(db3.Open(dir).ok());
  EXPECT_EQ(StorageSnapshot(&db3), recovered);
}

TEST(CrashMatrixTest, EveryCrashPointRecoversToPreOrPostCommitState) {
  std::vector<FaultInjectingEnv::OpRecord> ops = CountOperations();
  ASSERT_GE(ops.size(), 50u);
  std::vector<std::vector<std::string>> refs = ReferenceSnapshots();
  ASSERT_EQ(refs.size(), testsupport::CrashWorkloadMutationCount() + 1);

  for (uint64_t k = 0; k < ops.size(); ++k) {
    RunCrashPoint(k, /*partial=*/false, refs);
    if (HasFatalFailure()) return;  // one broken point floods the rest
  }
}

TEST(CrashMatrixTest, TornWriteAtEveryWriteRecoversToPreOrPostCommitState) {
  std::vector<FaultInjectingEnv::OpRecord> ops = CountOperations();
  std::vector<std::vector<std::string>> refs = ReferenceSnapshots();

  // The torn-write flavor only changes behaviour when the crashed operation
  // is a buffered-write flush; rerunning it for other kinds would duplicate
  // the plain matrix.
  int torn_points = 0;
  for (uint64_t k = 0; k < ops.size(); ++k) {
    if (ops[k].kind != FaultInjectingEnv::OpKind::kWrite) continue;
    torn_points++;
    RunCrashPoint(k, /*partial=*/true, refs);
    if (HasFatalFailure()) return;
  }
  std::cout << "torn-write matrix: " << torn_points << " write operations"
            << std::endl;
  EXPECT_GT(torn_points, 0);
}

}  // namespace
}  // namespace storage
}  // namespace sciql
