// Non-crash fault injection: a single filesystem operation fails (EIO,
// ENOSPC, or a short write) and the process must degrade gracefully — the
// in-memory session stays fully queryable (storage detaches with a clear
// error), the directory keeps its last consistent state, a reopen recovers a
// legal statement-prefix, and the next successful checkpoint garbage-collects
// any orphaned files the failure left behind. Also covers the WAL durability
// levels (none / flush / fsync) against a simulated power cut.

#include <gtest/gtest.h>

#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/storage/fault_env.h"
#include "tests/support/crash_workload.h"

namespace sciql {
namespace storage {
namespace {

namespace fs = std::filesystem;

using engine::Database;
using testsupport::CrashOutcome;
using testsupport::ListHeapFiles;
using testsupport::ListTmpFiles;
using testsupport::ManifestReferencedFiles;
using testsupport::ReferenceSnapshots;
using testsupport::RunCrashWorkload;
using testsupport::StorageSnapshot;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<FaultInjectingEnv::OpRecord> CountOperations() {
  std::string dir = FreshDir("fault_count");
  FaultInjectingEnv env;
  Database db;
  CrashOutcome out = RunCrashWorkload(dir, {&env}, &db);
  EXPECT_EQ(out.failed_step, CrashOutcome::kNoFailure) << out.error.ToString();
  return env.ops();
}

// After the final (real-filesystem) checkpoint, the directory must be exactly
// its manifest: every referenced heap file present, nothing unreferenced,
// no temp files, no orphaned WAL logs.
void ExpectDirectoryMatchesManifest(const std::string& dir) {
  EXPECT_EQ(ListHeapFiles(dir), ManifestReferencedFiles(dir));
  EXPECT_TRUE(ListTmpFiles(dir).empty());
  std::vector<std::string> wal_logs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) == 0) wal_logs.push_back(name);
  }
  EXPECT_EQ(wal_logs.size(), 1u) << "orphaned WAL logs left behind";
}

TEST(FaultInjectionTest, EveryInjectedFaultDegradesGracefully) {
  std::vector<FaultInjectingEnv::OpRecord> ops = CountOperations();
  ASSERT_GE(ops.size(), 50u);
  std::vector<std::vector<std::string>> refs = ReferenceSnapshots();
  const size_t all = refs.size() - 1;  // mutation count

  const FaultInjectingEnv::FaultKind kinds[] = {
      FaultInjectingEnv::FaultKind::kEIO,
      FaultInjectingEnv::FaultKind::kENOSPC,
      FaultInjectingEnv::FaultKind::kShortWrite,
  };

  int swallowed = 0, surfaced = 0;
  for (uint64_t k = 0; k < ops.size(); ++k) {
    SCOPED_TRACE("fault at op " + std::to_string(k) + " (" +
                 FaultInjectingEnv::OpKindName(ops[k].kind) + " of " +
                 ops[k].path + ")");
    std::string dir = FreshDir("fault_k" + std::to_string(k));
    FaultInjectingEnv env;
    env.FailOperation(k, kinds[k % 3]);

    CrashOutcome out;
    {
      Database db;
      out = RunCrashWorkload(dir, {&env}, &db);
      EXPECT_EQ(env.faults_injected(), 1u);

      if (out.failed_step == CrashOutcome::kNoFailure) {
        // The faulted operation was best-effort (directory fsync, GC or
        // old-log removal): the workload completes and storage stays
        // attached.
        swallowed++;
        EXPECT_TRUE(db.HasStorage());
        EXPECT_EQ(StorageSnapshot(&db), refs[all]);
      } else {
        // Graceful degradation: the failure carries a clear error, storage
        // is detached, and the in-memory session still serves everything
        // that was applied (including a statement whose WAL append failed —
        // it is in memory, just not durable).
        surfaced++;
        EXPECT_EQ(out.error.code(), Status::Code::kIOError)
            << out.error.ToString();
        EXPECT_FALSE(db.HasStorage());
        if (out.failed_step >= 0) {
          EXPECT_NE(out.error.ToString().find("storage detached"),
                    std::string::npos)
              << out.error.ToString();
        }
        size_t in_memory = out.committed + (out.in_flight_mutation ? 1 : 0);
        EXPECT_EQ(StorageSnapshot(&db), refs[in_memory]);
      }
    }

    // The directory must recover with the real filesystem to a legal prefix:
    // everything acknowledged durable, at most the in-flight statement more.
    Database db2;
    ASSERT_TRUE(db2.Open(dir).ok());
    std::vector<std::string> recovered = StorageSnapshot(&db2);
    const std::vector<std::string>& pre = refs[out.committed];
    const std::vector<std::string>& post =
        refs[out.committed + (out.in_flight_mutation ? 1 : 0)];
    EXPECT_TRUE(recovered == pre || recovered == post)
        << "recovered state is neither pre- nor post-commit (committed="
        << out.committed << ", failed step=" << out.failed_step << ")";

    // A clean checkpoint then succeeds and sweeps any orphans the failure
    // left behind (partially written new-epoch files, temp files).
    ASSERT_TRUE(db2.Checkpoint().ok());
    ExpectDirectoryMatchesManifest(dir);
  }
  std::cout << "fault matrix: " << ops.size() << " operations, " << surfaced
            << " surfaced failures, " << swallowed << " swallowed best-effort"
            << std::endl;
  EXPECT_GT(surfaced, 0);
  EXPECT_GT(swallowed, 0);  // best-effort ops exist and stay best-effort
}

// Satellite: ENOSPC while the checkpoint writes new-epoch heap files. The
// manifest must keep referencing only old-epoch files (never a partial new
// one), the session stays queryable, and the next successful checkpoint
// garbage-collects the orphaned files.
TEST(FaultInjectionTest, EnospcDuringCheckpointKeepsOldEpochAndGcCleansUp) {
  std::vector<FaultInjectingEnv::OpRecord> ops = CountOperations();
  std::vector<std::vector<std::string>> refs = ReferenceSnapshots();

  // The second checkpoint starts by creating its fresh WAL — the third
  // "wal." file creation in the schedule (open, first checkpoint, second
  // checkpoint). ENOSPC one op later lands inside the heap-file writes.
  uint64_t ckpt2_start = 0;
  int wal_creates = 0;
  for (uint64_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == FaultInjectingEnv::OpKind::kCreate &&
        ops[i].path.find("wal.") != std::string::npos) {
      if (++wal_creates == 3) {
        ckpt2_start = i;
        break;
      }
    }
  }
  ASSERT_EQ(wal_creates, 3);

  std::string dir = FreshDir("fault_enospc_ckpt");
  FaultInjectingEnv env;
  env.FailOperation(ckpt2_start + 2,  // the first heap file's buffered write
                    FaultInjectingEnv::FaultKind::kENOSPC);
  CrashOutcome out;
  {
    Database db;
    out = RunCrashWorkload(dir, {&env}, &db);
    // The second checkpoint is the failing step; six statements committed.
    ASSERT_NE(out.failed_step, CrashOutcome::kNoFailure);
    EXPECT_FALSE(out.in_flight_mutation);
    EXPECT_EQ(out.committed, 6u);
    EXPECT_NE(out.error.ToString().find("no space left"), std::string::npos)
        << out.error.ToString();
    EXPECT_FALSE(db.HasStorage());
    EXPECT_EQ(StorageSnapshot(&db), refs[6]);
  }

  // The manifest on disk is still the first checkpoint's: it references only
  // files that exist in full (old epoch), never the partially-written ones.
  std::set<std::string> referenced = ManifestReferencedFiles(dir);
  std::set<std::string> on_disk = ListHeapFiles(dir);
  for (const std::string& f : referenced) {
    EXPECT_TRUE(on_disk.count(f)) << "manifest references missing file " << f;
  }
  // The aborted checkpoint may have orphaned new-epoch files behind it.
  EXPECT_GE(on_disk.size(), referenced.size());

  // Reopen: WAL replay restores the statements after the first checkpoint.
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_EQ(StorageSnapshot(&db2), refs[6]);

  // The next successful checkpoint collects the orphans.
  ASSERT_TRUE(db2.Checkpoint().ok());
  ExpectDirectoryMatchesManifest(dir);
}

// Satellite: a failed directory fsync after an atomic rename is best-effort
// (the rename itself committed) — it must not fail the checkpoint, but it
// must be visible in the I/O telemetry instead of vanishing silently.
TEST(FaultInjectionTest, DirFsyncFailureIsCountedNotFatal) {
  std::vector<FaultInjectingEnv::OpRecord> ops = CountOperations();
  uint64_t first_syncdir = ops.size();
  for (uint64_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == FaultInjectingEnv::OpKind::kSyncDir) {
      first_syncdir = i;
      break;
    }
  }
  ASSERT_LT(first_syncdir, ops.size());

  std::string dir = FreshDir("fault_dirfsync");
  FaultInjectingEnv env;
  env.FailOperation(first_syncdir, FaultInjectingEnv::FaultKind::kEIO);
  uint64_t failed_before = Database::IoTelemetry().dir_fsync_failed.load();

  Database db;
  CrashOutcome out = RunCrashWorkload(dir, {&env}, &db);
  EXPECT_EQ(out.failed_step, CrashOutcome::kNoFailure) << out.error.ToString();
  EXPECT_EQ(env.faults_injected(), 1u);
  EXPECT_TRUE(db.HasStorage());
  EXPECT_EQ(Database::IoTelemetry().dir_fsync_failed.load(),
            failed_before + 1);
}

// -- durability levels -------------------------------------------------------

// kNone buffers WAL records in user space: a power cut before any flush
// loses everything since the last checkpoint — including the CREATE TABLE.
TEST(FaultInjectionTest, DurabilityNoneLosesBufferedRecordsOnPowerCut) {
  std::string dir = FreshDir("durability_none");
  FaultInjectingEnv env;
  uint64_t fsyncs_before = GetIoStats().wal_fsyncs.load();
  {
    Database db;
    OpenOptions options;
    options.env = &env;
    options.durability = DurabilityLevel::kNone;
    ASSERT_TRUE(db.Open(dir, options).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1), (2)").ok());
    env.HaltAllWrites();  // power cut; the buffered records never land
  }
  EXPECT_EQ(GetIoStats().wal_fsyncs.load(), fsyncs_before);

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_FALSE(db2.Query("SELECT COUNT(*) FROM t").ok())
      << "records acknowledged under durability=none survived a power cut "
         "through the test double, which models flushed bytes as durable";
}

// kFlush pushes each record to the OS at append time: it survives a process
// crash (modelled here: the test double treats flushed bytes as landed).
TEST(FaultInjectionTest, DurabilityFlushSurvivesProcessCrash) {
  std::string dir = FreshDir("durability_flush");
  FaultInjectingEnv env;
  uint64_t fsyncs_before = GetIoStats().wal_fsyncs.load();
  {
    Database db;
    OpenOptions options;
    options.env = &env;
    options.durability = DurabilityLevel::kFlush;
    ASSERT_TRUE(db.Open(dir, options).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1), (2)").ok());
    env.HaltAllWrites();
  }
  EXPECT_EQ(GetIoStats().wal_fsyncs.load(), fsyncs_before);  // never fsynced

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  auto rs = db2.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(testsupport::RenderGoldenRow(*rs, 0), "2");
}

// The default level fsyncs every append before the statement is
// acknowledged.
TEST(FaultInjectionTest, DurabilityFsyncIsDefaultAndFsyncsPerAppend) {
  std::string dir = FreshDir("durability_fsync");
  FaultInjectingEnv env;
  uint64_t fsyncs_before = GetIoStats().wal_fsyncs.load();
  {
    Database db;
    ASSERT_TRUE(db.Open(dir, {&env}).ok());
    EXPECT_EQ(db.storage_engine()->durability(), DurabilityLevel::kFsync);
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT)").ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1), (2)").ok());
    env.HaltAllWrites();
  }
  EXPECT_EQ(GetIoStats().wal_fsyncs.load(), fsyncs_before + 2);

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  auto rs = db2.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(testsupport::RenderGoldenRow(*rs, 0), "2");
}

TEST(FaultInjectionTest, ParseDurabilityLevelRoundTrips) {
  DurabilityLevel level;
  EXPECT_TRUE(ParseDurabilityLevel("none", &level));
  EXPECT_EQ(level, DurabilityLevel::kNone);
  EXPECT_TRUE(ParseDurabilityLevel("FLUSH", &level));
  EXPECT_EQ(level, DurabilityLevel::kFlush);
  EXPECT_TRUE(ParseDurabilityLevel("Fsync", &level));
  EXPECT_EQ(level, DurabilityLevel::kFsync);
  EXPECT_FALSE(ParseDurabilityLevel("paranoid", &level));
  EXPECT_STREQ(DurabilityLevelName(DurabilityLevel::kFsync), "fsync");
}

}  // namespace
}  // namespace storage
}  // namespace sciql
