// Corruption-injection round trip for the legacy single-file catalog image:
// random bit flips and truncations at seeded-random offsets must never crash
// the deserializer — every corrupted image yields a clean error Status (the
// v2 header checksum catches every payload flip; bounds-checked reads catch
// every truncation).

#include "src/catalog/persist.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/rng.h"
#include "src/engine/database.h"

namespace sciql {
namespace catalog {
namespace {

using engine::Database;

// A catalog exercising every payload shape: numeric + string + NULL table
// columns, an array with holes, defaults, negative dimension ranges.
std::string BuildImage() {
  Database db;
  EXPECT_TRUE(db.Run("CREATE TABLE t (k INT, s VARCHAR, d DOUBLE, b BOOLEAN); "
                     "INSERT INTO t VALUES (1, 'one', 1.5, TRUE), "
                     "(2, NULL, NULL, NULL), (3, '', -0.0, FALSE)")
                  .ok());
  EXPECT_TRUE(db.Run("CREATE ARRAY a (x INT DIMENSION[-2:2:4], "
                     "v DOUBLE DEFAULT 2.5); "
                     "UPDATE a SET v = x; DELETE FROM a WHERE x = 0")
                  .ok());
  auto bytes = SerializeCatalog(*db.catalog());
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::string();
}

TEST(PersistCorruptionTest, CleanImageRoundTrips) {
  std::string image = BuildImage();
  ASSERT_FALSE(image.empty());
  Database db;
  ASSERT_TRUE(DeserializeCatalog(db.catalog(), image).ok());
  auto rs = db.Query("SELECT k, s FROM t ORDER BY k");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 3u);
}

TEST(PersistCorruptionTest, RandomByteFlipsNeverCrashAndAlwaysFail) {
  std::string image = BuildImage();
  ASSERT_FALSE(image.empty());
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad = image;
    size_t nflips = 1 + rng.Below(8);
    for (size_t f = 0; f < nflips; ++f) {
      size_t off = rng.Below(bad.size());
      char flip = static_cast<char>(1u << rng.Below(8));
      bad[off] = static_cast<char>(bad[off] ^ flip);
    }
    if (bad == image) continue;  // flips cancelled out
    Database db;
    Status st = DeserializeCatalog(db.catalog(), bad);
    // Any real corruption must be detected: the header checksum covers every
    // payload byte, and the header itself fails the magic/version/checksum.
    EXPECT_FALSE(st.ok()) << "flip trial " << trial << " was accepted";
  }
}

TEST(PersistCorruptionTest, RandomTruncationsNeverCrashAndAlwaysFail) {
  std::string image = BuildImage();
  ASSERT_FALSE(image.empty());
  Rng rng(0xDEAD);
  // Every prefix length across a sweep of random cuts plus all short stubs.
  for (size_t len = 0; len < 32 && len < image.size(); ++len) {
    Database db;
    EXPECT_FALSE(DeserializeCatalog(db.catalog(), image.substr(0, len)).ok());
  }
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Below(image.size());
    Database db;
    EXPECT_FALSE(DeserializeCatalog(db.catalog(), image.substr(0, len)).ok())
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(PersistCorruptionTest, TrailingGarbageIsRejected) {
  std::string image = BuildImage();
  ASSERT_FALSE(image.empty());
  Database db;
  EXPECT_FALSE(DeserializeCatalog(db.catalog(), image + "x").ok());
}

TEST(PersistCorruptionTest, LegacyV1ImagesStillLoad) {
  // A v1 image is the v2 layout minus the checksum word: rebuild one by
  // patching the version and splicing the checksum out. The v1 read path has
  // no checksum but every read stays bounds-checked.
  std::string image = BuildImage();
  ASSERT_GT(image.size(), 16u);
  std::string v1 = image.substr(0, 4);
  uint32_t version = 1;
  v1.append(reinterpret_cast<const char*>(&version), 4);
  v1 += image.substr(16);

  Database db;
  ASSERT_TRUE(DeserializeCatalog(db.catalog(), v1).ok());
  auto rs = db.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());

  // Corrupted v1 images must not crash either (no checksum, so a flip may
  // deserialize, but truncation is always caught).
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Below(v1.size());
    Database db2;
    EXPECT_FALSE(DeserializeCatalog(db2.catalog(), v1.substr(0, len)).ok());
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string bad = v1;
    size_t off = 8 + rng.Below(bad.size() - 8);
    bad[off] = static_cast<char>(bad[off] ^ (1u << rng.Below(8)));
    Database db2;
    Status st = DeserializeCatalog(db2.catalog(), bad);  // must not crash
    (void)st;
  }
}

}  // namespace
}  // namespace catalog
}  // namespace sciql
