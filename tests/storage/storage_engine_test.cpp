// Durability semantics of the storage engine, driven through the Database
// lifecycle API: save -> reopen query equivalence (including a golden file's
// expected rows), lazy per-object loading, dirty-only checkpoints, and the
// mmap fallback path.

#include "src/storage/storage_engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "tests/support/golden_format.h"

namespace sciql {
namespace storage {
namespace {

namespace fs = std::filesystem;

using engine::Database;
using testsupport::GoldenRecord;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> QueryRows(Database* db, const std::string& sql) {
  auto rs = db->Query(sql);
  EXPECT_TRUE(rs.ok()) << sql << ": " << rs.status().ToString();
  std::vector<std::string> rows;
  if (!rs.ok()) return rows;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    rows.push_back(testsupport::RenderGoldenRow(*rs, r));
  }
  return rows;
}

TEST(StorageEngineTest, SaveReopenRoundTrip) {
  std::string dir = FreshDir("se_roundtrip");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE ARRAY m (x INT DIMENSION[0:1:4], "
                       "y INT DIMENSION[0:1:4], v INT DEFAULT 0)")
                    .ok());
    ASSERT_TRUE(db.Run("UPDATE m SET v = CASE WHEN x > y THEN x + y "
                       "WHEN x < y THEN x - y ELSE 0 END")
                    .ok());
    ASSERT_TRUE(db.Run("DELETE FROM m WHERE x > y").ok());  // punches holes
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT, s VARCHAR, d DOUBLE)").ok());
    ASSERT_TRUE(
        db.Run("INSERT INTO t VALUES (1, 'one', 1.5), (2, NULL, NULL)").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  // Array values and holes survive.
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM m WHERE x = 0 AND y = 3"),
            (std::vector<std::string>{"-3"}));
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM m WHERE x = 3 AND y = 0"),
            (std::vector<std::string>{"null"}));
  // Table data incl. strings and NULLs.
  EXPECT_EQ(QueryRows(&db2, "SELECT k, s, d FROM t ORDER BY k"),
            (std::vector<std::string>{"1|one|1.5", "2|null|null"}));
  // The reopened array keeps its default on dimension expansion.
  ASSERT_TRUE(
      db2.Run("ALTER ARRAY m ALTER DIMENSION x SET RANGE [0:1:5]").ok());
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM m WHERE x = 4 AND y = 0"),
            (std::vector<std::string>{"0"}));
  // Tiling works on the reopened array (dimension BATs rematerialized).
  auto rs = db2.Query(
      "SELECT [x], [y], SUM(v) AS s FROM m GROUP BY m[x:x+2][y:y+2] "
      "HAVING x = 0 AND y = 0");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
}

TEST(StorageEngineTest, GoldenFileSurvivesReopen) {
  // Replay a golden conformance file's statements into a disk-backed
  // database, checkpoint, reopen, and verify the file's own expected rows.
  std::string golden =
      std::string(SCIQL_SOURCE_DIR) + "/tests/sql/golden/order_by.test";
  std::vector<GoldenRecord> records;
  std::string error;
  ASSERT_TRUE(testsupport::ParseGoldenFile(golden, &records, &error)) << error;

  // Golden files interleave statements and queries, and expected rows hold
  // only at their position in the file. Reuse the leading segment: the setup
  // statements before the first query, then the consecutive run of queries
  // that immediately follows (its expectations all see the same state).
  std::vector<const GoldenRecord*> setup;
  std::vector<const GoldenRecord*> checks;
  for (const GoldenRecord& rec : records) {
    if (rec.kind == GoldenRecord::Kind::kQuery) {
      checks.push_back(&rec);
    } else if (checks.empty() &&
               rec.kind == GoldenRecord::Kind::kStatementOk) {
      setup.push_back(&rec);
    } else {
      break;  // first non-query after the query run ends the segment
    }
  }
  ASSERT_FALSE(setup.empty());
  ASSERT_FALSE(checks.empty()) << "golden file contributed no queries";

  std::string dir = FreshDir("se_golden");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    for (const GoldenRecord* rec : setup) {
      ASSERT_TRUE(db.Run(rec->sql).ok()) << rec->sql;
    }
    ASSERT_TRUE(db.Checkpoint().ok());
  }

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  for (const GoldenRecord* rec : checks) {
    std::vector<std::string> got = QueryRows(&db2, rec->sql);
    if (rec->sort_rows) std::sort(got.begin(), got.end());
    EXPECT_EQ(got, rec->expected)
        << golden << ":" << rec->line << " after reopen:\n  " << rec->sql;
  }
}

TEST(StorageEngineTest, LazyLoadTouchesOnlyQueriedObjects) {
  std::string dir = FreshDir("se_lazy");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t_a (v INT); "
                       "INSERT INTO t_a VALUES (1), (2); "
                       "CREATE TABLE t_b (w INT); "
                       "INSERT INTO t_b VALUES (10)")
                    .ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }

  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_EQ(db2.storage_engine()->stats().objects_loaded, 0u);
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM t_a ORDER BY v"),
            (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(db2.storage_engine()->stats().objects_loaded, 1u);

  // Destroy t_b's heap files behind the engine's back: only queries that
  // touch t_b may care.
  size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(fs::path(dir) / "heaps")) {
    if (entry.path().filename().string().rfind("t_b.", 0) == 0) {
      fs::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0u);

  // t_a (already loaded) and the rest of the session keep working...
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM t_a WHERE v = 2"),
            (std::vector<std::string>{"2"}));
  // ...while touching t_b fails cleanly (no crash, a real Status)...
  auto rs = db2.Query("SELECT w FROM t_b");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), Status::Code::kIOError);
  // ...and does not poison later statements.
  EXPECT_EQ(QueryRows(&db2, "SELECT COUNT(*) FROM t_a"),
            (std::vector<std::string>{"2"}));
}

TEST(StorageEngineTest, CheckpointWritesOnlyDirtyColumns) {
  std::string dir = FreshDir("se_dirty");
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE big (a INT, b INT, c VARCHAR); "
                     "INSERT INTO big VALUES (1, 2, 'x'), (3, 4, 'y'); "
                     "CREATE TABLE other (v DOUBLE); "
                     "INSERT INTO other VALUES (0.5)")
                  .ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_written, 4u);

  // Nothing changed: the next checkpoint writes nothing.
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_written, 0u);
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_clean, 4u);

  // One UPDATE on one column dirties exactly that column.
  ASSERT_TRUE(db.Run("UPDATE big SET a = a + 10 WHERE b = 2").ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_written, 1u);
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_clean, 3u);

  // A force-full checkpoint rewrites every loaded column.
  ASSERT_TRUE(db.storage_engine()->Checkpoint(/*force_full=*/true).ok());
  EXPECT_EQ(db.storage_engine()->stats().checkpoint_columns_written, 4u);
}

TEST(StorageEngineTest, UntouchedObjectsCarryForwardWithoutLoading) {
  std::string dir = FreshDir("se_carry");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE loaded (v INT); "
                       "INSERT INTO loaded VALUES (7); "
                       "CREATE TABLE dormant (w VARCHAR); "
                       "INSERT INTO dormant VALUES ('sleepy')")
                    .ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("UPDATE loaded SET v = 8").ok());
    // dormant was never touched: the checkpoint must not load it, and its
    // manifest entry carries forward.
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_EQ(db.storage_engine()->stats().objects_loaded, 1u);
  }
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_EQ(QueryRows(&db2, "SELECT w FROM dormant"),
            (std::vector<std::string>{"sleepy"}));
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM loaded"),
            (std::vector<std::string>{"8"}));
}

TEST(StorageEngineTest, DropSurvivesCheckpointAndGarbageCollects) {
  std::string dir = FreshDir("se_drop");
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE gone (v INT); INSERT INTO gone VALUES (1); "
                     "CREATE TABLE kept (v INT); INSERT INTO kept VALUES (2)")
                  .ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.Run("DROP TABLE gone").ok());
  ASSERT_TRUE(db.Checkpoint().ok());

  // The dropped table's heap files are garbage-collected.
  for (const auto& entry : fs::directory_iterator(fs::path(dir) / "heaps")) {
    EXPECT_NE(entry.path().filename().string().rfind("gone.", 0), 0u)
        << "orphan file survived GC: " << entry.path();
  }
  Database db2;
  ASSERT_TRUE(db2.Open(dir).ok());
  EXPECT_FALSE(db2.Query("SELECT v FROM gone").ok());
  EXPECT_EQ(QueryRows(&db2, "SELECT v FROM kept"),
            (std::vector<std::string>{"2"}));
}

TEST(StorageEngineTest, MmapFallbackReadsTheSameBytes) {
  std::string dir = FreshDir("se_fallback");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT, s VARCHAR); "
                       "INSERT INTO t VALUES (1, 'alpha'), (2, NULL)")
                    .ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  ::setenv("SCIQL_NO_MMAP", "1", 1);
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    EXPECT_EQ(QueryRows(&db, "SELECT k, s FROM t ORDER BY k"),
              (std::vector<std::string>{"1|alpha", "2|null"}));
  }
  ::unsetenv("SCIQL_NO_MMAP");
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());
  EXPECT_EQ(QueryRows(&db, "SELECT k, s FROM t ORDER BY k"),
            (std::vector<std::string>{"1|alpha", "2|null"}));
}

TEST(StorageEngineTest, MutationsAfterReopenPersistAcrossGenerations) {
  // Dirty tracking must catch mutations on BATs that were loaded from disk,
  // not just freshly created ones — across several open/mutate/checkpoint
  // generations, for both a table and an array.
  std::string dir = FreshDir("se_generations");
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("CREATE TABLE t (k INT); INSERT INTO t VALUES (1); "
                       "CREATE ARRAY a (x INT DIMENSION[0:1:3], "
                       "v INT DEFAULT 0)")
                    .ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    ASSERT_TRUE(db.Run("INSERT INTO t VALUES (2)").ok());       // append
    ASSERT_TRUE(db.Run("UPDATE a SET v = x * 10").ok());        // scatter
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_GT(db.storage_engine()->stats().checkpoint_columns_written, 0u);
  }
  {
    Database db;
    ASSERT_TRUE(db.Open(dir).ok());
    EXPECT_EQ(db.storage_engine()->stats().wal_replayed, 0u);  // all in heaps
    ASSERT_TRUE(db.Run("DELETE FROM t WHERE k = 1").ok());  // replaces BATs
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());
  EXPECT_EQ(QueryRows(&db, "SELECT k FROM t ORDER BY k"),
            (std::vector<std::string>{"2"}));
  EXPECT_EQ(QueryRows(&db, "SELECT v FROM a WHERE x = 2"),
            (std::vector<std::string>{"20"}));
}

TEST(StorageEngineTest, CloseReturnsToEmptySession) {
  std::string dir = FreshDir("se_close");
  Database db;
  ASSERT_TRUE(db.Open(dir).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE t (v INT); INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db.Close().ok());
  EXPECT_FALSE(db.HasStorage());
  EXPECT_FALSE(db.Query("SELECT v FROM t").ok());  // session is empty again
  // The data is durable: reopening brings it back.
  ASSERT_TRUE(db.Open(dir).ok());
  EXPECT_EQ(QueryRows(&db, "SELECT v FROM t"), (std::vector<std::string>{"1"}));
}

}  // namespace
}  // namespace storage
}  // namespace sciql
