// WAL semantics: append/replay ordering, torn-tail truncation, corrupt
// record detection, reset.

#include "src/storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/storage/fault_env.h"
#include "src/storage/file_io.h"

namespace sciql {
namespace storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::string> ReplayAll(const std::string& path,
                                   std::unique_ptr<Wal>* wal_out = nullptr) {
  std::vector<std::string> seen;
  auto wal = Wal::Open(path, [&seen](std::string_view p) {
    seen.emplace_back(p);
    return Status::OK();
  });
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  if (wal.ok() && wal_out != nullptr) *wal_out = std::move(*wal);
  return seen;
}

TEST(WalTest, AppendThenReplayInOrder) {
  std::string path = FreshDir("wal_append") + "/wal.log";
  {
    std::unique_ptr<Wal> wal;
    ASSERT_TRUE(ReplayAll(path, &wal).empty());
    ASSERT_TRUE(wal->Append("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(wal->Append("").ok());  // empty payloads are legal records
    ASSERT_TRUE(wal->Append("UPDATE t SET v = 2").ok());
    EXPECT_EQ(wal->record_count(), 3u);
  }
  std::unique_ptr<Wal> wal;
  std::vector<std::string> seen = ReplayAll(path, &wal);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "INSERT INTO t VALUES (1)");
  EXPECT_EQ(seen[1], "");
  EXPECT_EQ(seen[2], "UPDATE t SET v = 2");
  EXPECT_EQ(wal->replayed_count(), 3u);
  EXPECT_EQ(wal->discarded_bytes(), 0u);
}

TEST(WalTest, TornTailIsTruncatedAndAppendable) {
  std::string path = FreshDir("wal_torn") + "/wal.log";
  {
    std::unique_ptr<Wal> wal;
    ReplayAll(path, &wal);
    ASSERT_TRUE(wal->Append("first statement").ok());
    ASSERT_TRUE(wal->Append("second statement").ok());
  }
  // Crash simulation: the tail of the last record never hit the disk.
  uintmax_t full = fs::file_size(path);
  fs::resize_file(path, full - 5);

  std::unique_ptr<Wal> wal;
  std::vector<std::string> seen = ReplayAll(path, &wal);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first statement");
  EXPECT_GT(wal->discarded_bytes(), 0u);
  // The torn bytes are gone from the file, and the log accepts new records.
  ASSERT_TRUE(wal->Append("third statement").ok());
  wal.reset();
  seen = ReplayAll(path);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], "third statement");
}

TEST(WalTest, CorruptRecordStopsReplay) {
  std::string path = FreshDir("wal_corrupt") + "/wal.log";
  {
    std::unique_ptr<Wal> wal;
    ReplayAll(path, &wal);
    ASSERT_TRUE(wal->Append("statement one").ok());
    ASSERT_TRUE(wal->Append("statement two").ok());
  }
  {
    // Flip one payload byte of the first record (header is 24 bytes).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(26);
    f.put('X');
  }
  std::vector<std::string> seen = ReplayAll(path);
  EXPECT_TRUE(seen.empty());  // checksum mismatch at record 0 stops the scan
}

TEST(WalTest, ReplayErrorPropagates) {
  std::string path = FreshDir("wal_err") + "/wal.log";
  {
    std::unique_ptr<Wal> wal;
    ReplayAll(path, &wal);
    ASSERT_TRUE(wal->Append("boom").ok());
  }
  auto wal = Wal::Open(path, [](std::string_view) {
    return Status::ExecError("replay rejected");
  });
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), Status::Code::kIOError);
}

TEST(WalTest, AppendFailureSurfacesIOError) {
  std::string path = FreshDir("wal_appendfail") + "/wal.log";
  FaultInjectingEnv env;
  auto wal = Wal::Open(path, nullptr, &env);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  // The next mutating operation is the append's buffered-write flush.
  env.FailOperation(env.op_count(), FaultInjectingEnv::FaultKind::kEIO);
  Status st = (*wal)->Append("doomed");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_NE(st.ToString().find("WAL append"), std::string::npos);
  EXPECT_EQ((*wal)->record_count(), 0u);  // the failed record never counted
  // The stream error sticks: later appends keep failing loudly instead of
  // silently dropping records.
  EXPECT_FALSE((*wal)->Append("also doomed").ok());
  // Reset discards the broken stream (its pending bytes are being thrown
  // away anyway) and recovers a usable log.
  ASSERT_TRUE((*wal)->Reset().ok());
  ASSERT_TRUE((*wal)->Append("fresh").ok());
  wal->reset();
  std::vector<std::string> seen = ReplayAll(path);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "fresh");
}

TEST(WalTest, FsyncFailureFailsTheAppend) {
  std::string path = FreshDir("wal_fsyncfail") + "/wal.log";
  FaultInjectingEnv env;
  auto wal = Wal::Open(path, nullptr, &env);  // default durability: fsync
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  // Skip the flush (op 1), fail the fsync (op 2): the bytes reached the OS
  // but the statement must still not be acknowledged.
  env.FailOperation(env.op_count() + 1, FaultInjectingEnv::FaultKind::kEIO);
  Status st = (*wal)->Append("unsynced");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_EQ((*wal)->record_count(), 0u);
}

TEST(WalTest, ResetFailureSurfacesIOError) {
  std::string path = FreshDir("wal_resetfail") + "/wal.log";
  FaultInjectingEnv env;
  auto wal = Wal::Open(path, nullptr, &env);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE((*wal)->Append("one").ok());
  // The reset's truncating reopen is the next file creation; failing it must
  // surface — a reset that did not truncate can never report success.
  env.FailOperation(env.op_count(), FaultInjectingEnv::FaultKind::kENOSPC);
  Status st = (*wal)->Reset();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
  EXPECT_NE(st.ToString().find("cannot truncate WAL"), std::string::npos);
}

TEST(WalTest, ResetDiscardsRecords) {
  std::string path = FreshDir("wal_reset") + "/wal.log";
  std::unique_ptr<Wal> wal;
  ReplayAll(path, &wal);
  ASSERT_TRUE(wal->Append("one").ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->record_count(), 0u);
  ASSERT_TRUE(wal->Append("two").ok());
  wal.reset();
  std::vector<std::string> seen = ReplayAll(path);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "two");
}

}  // namespace
}  // namespace storage
}  // namespace sciql
