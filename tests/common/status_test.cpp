#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace sciql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("no such table: t");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_EQ(st.message(), "no such table: t");
  EXPECT_EQ(st.ToString(), "NotFound: no such table: t");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(Status::Code::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(Status::Code::kBindError), "BindError");
  EXPECT_STREQ(StatusCodeName(Status::Code::kExecError), "ExecError");
  EXPECT_STREQ(StatusCodeName(Status::Code::kTypeMismatch), "TypeMismatch");
  EXPECT_STREQ(StatusCodeName(Status::Code::kIOError), "IOError");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

Result<int> Chained(int v) {
  SCIQL_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Chained(5).value(), 11);
  EXPECT_FALSE(Chained(-5).ok());
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, CaseAndSplit) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Join({"a", "b"}, "+"), "a+b");
  EXPECT_EQ(Trim("  x \n"), "x");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-1.5), "-1.5");
  EXPECT_EQ(FormatDouble(4.0 / 3.0), "1.33333");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace sciql
