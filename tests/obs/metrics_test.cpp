// The unified metrics registry: Prometheus exposition round-trip, histogram
// bucket determinism, per-core gauge lifecycle and the slow-query log.
//
// The round-trip test re-parses RenderPrometheus() with a minimal exposition
// parser and checks the invariants monitoring relies on: every builtin
// counter is present, sample values parse, families are sorted, histogram
// buckets are cumulative and the +Inf bucket equals _count.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/gdk/kernels.h"
#include "src/obs/metrics.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"

namespace sciql {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal Prometheus text-exposition parser, enough to round-trip the
// registry's output: HELP/TYPE headers plus `name{labels} value` samples.
// ---------------------------------------------------------------------------

struct Sample {
  std::string name;    // full sample name, e.g. sciql_statement_latency_us_bucket
  std::string labels;  // raw label list without braces, "" if none
  double value = 0;
};

struct Exposition {
  std::map<std::string, std::string> help;  // family -> help text
  std::map<std::string, std::string> type;  // family -> counter|gauge|histogram
  std::vector<Sample> samples;              // in exposition order
};

bool ParseExposition(const std::string& text, Exposition* out,
                     std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      bool is_help = line[2] == 'H';
      size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        *error = "malformed header at line " + std::to_string(lineno);
        return false;
      }
      std::string family = line.substr(7, sp - 7);
      std::string rest = line.substr(sp + 1);
      if (is_help) {
        out->help[family] = rest;
      } else {
        out->type[family] = rest;
      }
      continue;
    }
    if (line[0] == '#') {
      *error = "unexpected comment at line " + std::to_string(lineno);
      return false;
    }
    Sample s;
    size_t brace = line.find('{');
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) {
      *error = "malformed sample at line " + std::to_string(lineno);
      return false;
    }
    if (brace != std::string::npos && brace < sp) {
      size_t close = line.find('}', brace);
      if (close == std::string::npos || close > sp) {
        *error = "malformed labels at line " + std::to_string(lineno);
        return false;
      }
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace + 1, close - brace - 1);
    } else {
      s.name = line.substr(0, sp);
    }
    const char* val = line.c_str() + sp + 1;
    char* end = nullptr;
    s.value = std::strtod(val, &end);
    if (end == val || *end != '\0') {
      *error = "unparseable value at line " + std::to_string(lineno) + ": " +
               line;
      return false;
    }
    out->samples.push_back(std::move(s));
  }
  return true;
}

double SampleValue(const Exposition& exp, const std::string& name,
                   const std::string& labels = "") {
  for (const Sample& s : exp.samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "sample not found: " << name << " {" << labels << "}";
  return -1;
}

bool HasSample(const Exposition& exp, const std::string& name) {
  for (const Sample& s : exp.samples) {
    if (s.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Histogram bucketing is fixed at compile time — pin it exactly.
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketIndexIsDeterministic) {
  // First bucket whose bound (2^i) is >= v.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1000), 10u);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 26), 26u);
  // Everything past the last finite bound lands in +Inf.
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 26) + 1),
            Histogram::kFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kFiniteBuckets);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketBound(i), uint64_t{1} << i);
  }
}

TEST(HistogramTest, ObserveAccumulatesIdenticallyAcrossInstances) {
  Histogram a, b;
  const uint64_t values[] = {0, 1, 7, 64, 65, 100000, uint64_t{1} << 30};
  for (uint64_t v : values) {
    a.Observe(v);
    b.Observe(v);
  }
  EXPECT_EQ(a.count(), 7u);
  EXPECT_EQ(a.sum(), b.sum());
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.bucket(Histogram::kFiniteBuckets), 1u);  // the 2^30 observation
}

// ---------------------------------------------------------------------------
// Exposition round-trip.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, RenderPrometheusRoundTrips) {
  // Touch the engine so statement metrics are live, not just registered.
  engine::Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE m (v INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO m VALUES (3), (1), (2)").ok());
  ASSERT_TRUE(db.Query("SELECT v FROM m ORDER BY v").ok());

  Exposition exp;
  std::string error;
  std::string text = RenderPrometheus();
  ASSERT_TRUE(ParseExposition(text, &exp, &error)) << error;

  // Every pre-existing counter is present under its stable prefix.
  for (const gdk::TelemetryField& f : gdk::TelemetryFields()) {
    std::string family = std::string("sciql_gdk_") + f.name;
    EXPECT_TRUE(HasSample(exp, family)) << family;
    EXPECT_EQ(exp.type[family], "counter") << family;
    EXPECT_FALSE(exp.help[family].empty()) << family;
  }
  for (const storage::IoStatsField& f : storage::IoStatsFields()) {
    std::string family = std::string("sciql_io_") + f.name;
    EXPECT_TRUE(HasSample(exp, family)) << family;
    EXPECT_EQ(exp.type[family], "counter") << family;
  }
  EXPECT_TRUE(HasSample(exp, "sciql_statement_executed"));
  EXPECT_TRUE(HasSample(exp, "sciql_statement_failed"));
  EXPECT_TRUE(HasSample(exp, "sciql_slowlog_lines"));
  EXPECT_TRUE(HasSample(exp, "sciql_slowlog_write_failed"));

  // The statements above were counted.
  EXPECT_GE(SampleValue(exp, "sciql_statement_executed"), 3);
  // The ORDER BY flowed through a kernel that pinned telemetry.
  EXPECT_GE(SampleValue(exp, "sciql_statement_latency_us_count"), 1);

  // Samples are sorted by (family base name, labels): verify the exposition
  // is grouped — once a family ends, it never reappears.
  std::map<std::string, int> family_runs;
  std::string prev_family;
  auto family_of = [](const std::string& sample_name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t n = sample_name.size(), m = std::string(suffix).size();
      if (n > m && sample_name.compare(n - m, m, suffix) == 0) {
        return sample_name.substr(0, n - m);
      }
    }
    return sample_name;
  };
  for (const Sample& s : exp.samples) {
    std::string fam = family_of(s.name);
    if (fam != prev_family) {
      family_runs[fam]++;
      prev_family = fam;
    }
  }
  for (const auto& [fam, runs] : family_runs) {
    EXPECT_EQ(runs, 1) << "family " << fam << " appears in " << runs
                       << " separate runs";
  }
}

TEST(MetricsRegistryTest, HistogramExpositionIsCumulative) {
  // Drive a few statements so the latency histogram has observations.
  engine::Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE h (v INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO h VALUES (1), (2)").ok());

  Exposition exp;
  std::string error;
  ASSERT_TRUE(ParseExposition(RenderPrometheus(), &exp, &error)) << error;

  for (const char* family :
       {"sciql_statement_latency_us", "sciql_statement_rows"}) {
    EXPECT_EQ(exp.type[family], "histogram") << family;
    std::string bucket = std::string(family) + "_bucket";
    double prev = 0;
    double inf = -1;
    size_t buckets_seen = 0;
    for (const Sample& s : exp.samples) {
      if (s.name != bucket) continue;
      ++buckets_seen;
      EXPECT_GE(s.value, prev) << family << " buckets must be cumulative";
      prev = s.value;
      if (s.labels == "le=\"+Inf\"") inf = s.value;
    }
    EXPECT_EQ(buckets_seen, Histogram::kBuckets) << family;
    EXPECT_EQ(inf, SampleValue(exp, std::string(family) + "_count"))
        << family << ": +Inf bucket must equal _count";
  }
}

TEST(MetricsRegistryTest, RegisterUnregisterLabeledSeries) {
  uint64_t v1 = 41, v2 = 42;
  Metrics().RegisterGauge("test.tmp.gauge", "a test gauge",
                          [&v1]() { return v1; }, "shard=\"1\"");
  Metrics().RegisterGauge("test.tmp.gauge", "a test gauge",
                          [&v2]() { return v2; }, "shard=\"2\"");

  Exposition exp;
  std::string error;
  ASSERT_TRUE(ParseExposition(RenderPrometheus(), &exp, &error)) << error;
  EXPECT_EQ(SampleValue(exp, "test_tmp_gauge", "shard=\"1\""), 41);
  EXPECT_EQ(SampleValue(exp, "test_tmp_gauge", "shard=\"2\""), 42);
  EXPECT_EQ(exp.type["test_tmp_gauge"], "gauge");

  Metrics().Unregister("test.tmp.gauge", "shard=\"1\"");
  Metrics().Unregister("test.tmp.gauge", "shard=\"2\"");
  Exposition after;
  ASSERT_TRUE(ParseExposition(RenderPrometheus(), &after, &error)) << error;
  EXPECT_FALSE(HasSample(after, "test_tmp_gauge"));
}

TEST(MetricsRegistryTest, CoreGaugesAppearAndDisappearWithTheCore) {
  std::string labels;
  {
    engine::Database db;
    labels = "core=\"" + std::to_string(db.core().core_id()) + "\"";
    Exposition exp;
    std::string error;
    ASSERT_TRUE(ParseExposition(RenderPrometheus(), &exp, &error)) << error;
    // The facade's default session is alive.
    EXPECT_EQ(SampleValue(exp, "sciql_core_active_sessions", labels), 1);
    EXPECT_GE(SampleValue(exp, "sciql_core_sessions_created", labels), 1);
  }
  Exposition after;
  std::string error;
  ASSERT_TRUE(ParseExposition(RenderPrometheus(), &after, &error)) << error;
  for (const Sample& s : after.samples) {
    EXPECT_FALSE(s.name == "sciql_core_active_sessions" && s.labels == labels)
        << "destroyed core still scraped";
  }
}

// ---------------------------------------------------------------------------
// Slow-query log.
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() /
          ("sciql_obs_test_" + std::to_string(::getpid()) + "_" + leaf))
      .string();
}

TEST(SlowQueryLogTest, ThresholdZeroLogsEveryStatementAsJson) {
  std::string path = TempPath("slow.jsonl");
  std::filesystem::remove(path);

  engine::Database db;
  engine::DatabaseCore::SlowQueryLogOptions options;
  options.path = path;
  options.threshold_micros = 0;  // log everything
  ASSERT_TRUE(db.core().EnableSlowQueryLog(options).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE s (v INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO s VALUES (2), (1)").ok());
  ASSERT_TRUE(db.Query("SELECT v FROM s ORDER BY v").ok());
  db.core().DisableSlowQueryLog();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  // Structured shape: every line is one JSON object with the fixed keys.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"sql\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"session\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"total_us\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"spans\":{\"parse_us\":"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"top_ops\":["), std::string::npos) << line;
  }
  EXPECT_NE(lines[0].find("CREATE TABLE s (v INT)"), std::string::npos);
  EXPECT_NE(lines[2].find("SELECT v FROM s ORDER BY v"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SlowQueryLogTest, HugeThresholdLogsNothing) {
  std::string path = TempPath("quiet.jsonl");
  std::filesystem::remove(path);

  engine::Database db;
  engine::DatabaseCore::SlowQueryLogOptions options;
  options.path = path;
  options.threshold_micros = uint64_t{1} << 40;  // ~13 days
  ASSERT_TRUE(db.core().EnableSlowQueryLog(options).ok());
  ASSERT_TRUE(db.Run("CREATE TABLE q (v INT)").ok());
  db.core().DisableSlowQueryLog();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());  // the file is created eagerly...
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_TRUE(all.empty());  // ...but nothing crossed the threshold
  std::filesystem::remove(path);
}

TEST(SlowQueryLogTest, AppendFailureBumpsCounterAndStatementsStillSucceed) {
  std::string path = TempPath("failing.jsonl");
  std::filesystem::remove(path);

  storage::FaultInjectingEnv env;
  engine::Database db;
  engine::DatabaseCore::SlowQueryLogOptions options;
  options.path = path;
  options.threshold_micros = 0;
  options.env = &env;
  ASSERT_TRUE(db.core().EnableSlowQueryLog(options).ok());
  // Pull the plug underneath the already-open log file: every append from
  // here on fails. The engine must treat that as best-effort.
  env.HaltAllWrites();

  uint64_t failed_before = Counters().slow_query_log_write_failed.load();
  ASSERT_TRUE(db.Run("CREATE TABLE f (v INT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO f VALUES (7)").ok());
  db.core().DisableSlowQueryLog();

  EXPECT_GE(Counters().slow_query_log_write_failed.load(), failed_before + 2);
  std::filesystem::remove(path);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

}  // namespace
}  // namespace obs
}  // namespace sciql
