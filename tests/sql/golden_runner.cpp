// Golden-file SQL conformance harness (sqllogictest-style).
//
// Each tests/sql/golden/*.test file is registered as one gtest and replayed
// against a fresh Database. File format, records separated by blank lines:
//
//   # comment (anywhere between records)
//   statement ok          -- SQL on the following lines must succeed
//   CREATE TABLE t (k INT);
//
//   statement error       -- SQL must fail (any error)
//   SELECT nope FROM t;
//
//   query                 -- SQL, then ----, then the expected rows
//   SELECT k FROM t ORDER BY k;
//   ----
//   1|2
//
//   query sorted          -- rows are lexicographically sorted before the
//                            compare; use for queries without ORDER BY,
//                            whose row order is implementation-defined (it
//                            may legitimately change with, e.g., a cached
//                            order index flipping a join's probe side)
//
//   threads N             -- switch the kernel thread count (restored at EOF)
//   reset                 -- discard the database, start fresh
//
// Expected rows render one line per row, columns joined with '|', values
// formatted like ResultSet::ToString cells: "null", integers, FormatDouble
// for dbl, true/false for bit, and unquoted text for strings.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/obs/trace.h"
#include "tests/support/golden_format.h"

#ifndef SCIQL_SOURCE_DIR
#error "SCIQL_SOURCE_DIR must point at the repository root"
#endif

namespace sciql {
namespace {

namespace fs = std::filesystem;

using testsupport::GoldenRecord;
using Record = testsupport::GoldenRecord;

std::vector<Record> ParseFile(const std::string& path) {
  std::vector<Record> records;
  std::string error;
  if (!testsupport::ParseGoldenFile(path, &records, &error)) {
    ADD_FAILURE() << error;
    return {};
  }
  return records;
}

void RunFile(const std::string& path) {
  std::vector<Record> records = ParseFile(path);
  // Golden files pin EXPLAIN ANALYZE output; durations become '*' so the
  // expected rows are stable (rows and chosen-path annotations are exact).
  obs::GetTraceControls().redact_timings = true;
  auto db = std::make_unique<engine::Database>();
  for (const Record& rec : records) {
    std::string where = path + ":" + std::to_string(rec.line);
    switch (rec.kind) {
      case Record::Kind::kReset:
        db = std::make_unique<engine::Database>();
        break;
      case Record::Kind::kThreads:
        engine::Database::SetExecutionThreads(rec.threads);
        break;
      case Record::Kind::kStatementOk: {
        Status st = db->Run(rec.sql);
        EXPECT_TRUE(st.ok()) << where << ": statement failed: "
                             << st.ToString() << "\n  " << rec.sql;
        break;
      }
      case Record::Kind::kStatementError: {
        Status st = db->Run(rec.sql);
        EXPECT_FALSE(st.ok()) << where << ": statement unexpectedly "
                              << "succeeded:\n  " << rec.sql;
        break;
      }
      case Record::Kind::kQuery: {
        auto rs = db->Query(rec.sql);
        if (!rs.ok()) {
          ADD_FAILURE() << where << ": query failed: "
                        << rs.status().ToString() << "\n  " << rec.sql;
          break;
        }
        std::vector<std::string> got;
        for (size_t r = 0; r < rs->NumRows(); ++r) {
          got.push_back(testsupport::RenderGoldenRow(*rs, r));
        }
        if (rec.sort_rows) std::sort(got.begin(), got.end());
        if (got != rec.expected) {
          std::ostringstream oss;
          oss << where << ": result mismatch for\n  " << rec.sql
              << "\nexpected (" << rec.expected.size() << " rows):\n";
          for (const auto& l : rec.expected) oss << "  " << l << "\n";
          oss << "got (" << got.size() << " rows):\n";
          for (const auto& l : got) oss << "  " << l << "\n";
          ADD_FAILURE() << oss.str();
        }
        break;
      }
    }
  }
  // Golden files may sweep the thread count; leave the pool as we found it.
  engine::Database::SetExecutionThreads(1);
}

class GoldenFileTest : public ::testing::Test {
 public:
  explicit GoldenFileTest(std::string path) : path_(std::move(path)) {}
  void TestBody() override { RunFile(path_); }

 private:
  std::string path_;
};

// Register one test per golden file before main() runs (gtest accepts
// RegisterTest calls up until InitGoogleTest).
bool RegisterGoldenTests() {
  fs::path dir = fs::path(SCIQL_SOURCE_DIR) / "tests" / "sql" / "golden";
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".test") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    // Surface a misconfigured golden dir as a failing test, not a silent
    // zero-test pass.
    ::testing::RegisterTest(
        "GoldenSql", "MissingGoldenDir", nullptr, nullptr, __FILE__, __LINE__,
        [dir]() -> ::testing::Test* {
          return new GoldenFileTest((dir / "<missing>").string());
        });
    return false;
  }
  for (const fs::path& f : files) {
    std::string name = f.stem().string();
    ::testing::RegisterTest(
        "GoldenSql", name.c_str(), nullptr, nullptr, __FILE__, __LINE__,
        [f]() -> ::testing::Test* { return new GoldenFileTest(f.string()); });
  }
  return true;
}

[[maybe_unused]] const bool kRegistered = RegisterGoldenTests();

}  // namespace
}  // namespace sciql
