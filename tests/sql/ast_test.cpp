#include "src/sql/ast.h"

#include <gtest/gtest.h>

#include "src/sql/parser.h"

namespace sciql {
namespace sql {
namespace {

TEST(AstTest, ExprBuildersAndToString) {
  ExprPtr e = Expr::Bin(gdk::BinOp::kAdd, Expr::Col("t", "a"),
                        Expr::Lit(gdk::ScalarValue::Int(1)));
  EXPECT_EQ(e->ToString(), "(t.a + 1)");
}

TEST(AstTest, CloneIsDeep) {
  auto st = ParseOne(
      "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t WHERE b IN (1,2)");
  ASSERT_TRUE(st.ok());
  const Expr& original = *(*st)->select->items[0].expr;
  ExprPtr copy = original.Clone();
  EXPECT_EQ(copy->ToString(), original.ToString());
  // Mutating the clone leaves the original untouched.
  copy->children[0]->bin_op = gdk::BinOp::kLt;
  EXPECT_NE(copy->ToString(), original.ToString());
}

TEST(AstTest, StatementToStringCoversAllKinds) {
  const char* statements[] = {
      "CREATE TABLE t (a INT, s VARCHAR)",
      "CREATE ARRAY m (x INT DIMENSION[0:1:4], v DOUBLE DEFAULT 1.5)",
      "CREATE ARRAY m2 AS SELECT [x], v FROM m",
      "DROP ARRAY m",
      "DROP TABLE t",
      "ALTER ARRAY m ALTER DIMENSION x SET RANGE [-1:2:7]",
      "INSERT INTO t (a) VALUES (1), (2)",
      "INSERT INTO m SELECT [x], v FROM m",
      "UPDATE t SET a = a + 1 WHERE a < 10",
      "DELETE FROM t WHERE a IS NULL",
      "EXPLAIN SELECT 1",
      "SELECT DISTINCT a, COUNT(*) FROM t GROUP BY a "
      "HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 5",
  };
  for (const char* text : statements) {
    auto st = ParseOne(text);
    ASSERT_TRUE(st.ok()) << text << " -> " << st.status().ToString();
    std::string rendered = (*st)->ToString();
    auto again = ParseOne(rendered);
    EXPECT_TRUE(again.ok()) << rendered << " -> "
                            << again.status().ToString();
    // Rendering is a fixpoint after one round trip.
    EXPECT_EQ((*again)->ToString(), rendered);
  }
}

TEST(AstTest, CellRefRendering) {
  auto st = ParseOne("SELECT img[x-1][y].v FROM img");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->select->items[0].expr->ToString(), "img[(x - 1)][y].v");
}

TEST(AstTest, TilePatternRendering) {
  auto st = ParseOne(
      "SELECT [x], SUM(v) FROM g GROUP BY g[x:x+2][y], g[x-1][y-1]");
  ASSERT_TRUE(st.ok());
  std::string out = (*st)->ToString();
  EXPECT_NE(out.find("g[x:(x + 2)][y]"), std::string::npos);
  EXPECT_NE(out.find("g[(x - 1)][(y - 1)]"), std::string::npos);
}

TEST(AstTest, NotVariantsRender) {
  auto st = ParseOne(
      "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (3) "
      "AND c IS NOT NULL");
  ASSERT_TRUE(st.ok());
  std::string out = (*st)->ToString();
  EXPECT_NE(out.find("NOT BETWEEN"), std::string::npos);
  EXPECT_NE(out.find("NOT IN"), std::string::npos);
  EXPECT_NE(out.find("IS NOT NULL"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace sciql
