#include "src/sql/parser.h"

#include <gtest/gtest.h>

#include <limits>

namespace sciql {
namespace sql {
namespace {

StatementPtr MustParse(const std::string& text) {
  auto r = ParseOne(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? std::move(r.value()) : nullptr;
}

TEST(ParserTest, PaperCreateArray) {
  auto st = MustParse(
      "CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
      "v INT DEFAULT 0)");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->kind, Statement::Kind::kCreateArray);
  ASSERT_EQ(st->columns.size(), 3u);
  EXPECT_TRUE(st->columns[0].is_dimension);
  EXPECT_EQ(st->columns[0].range, array::DimRange(0, 1, 4));
  EXPECT_FALSE(st->columns[2].is_dimension);
  EXPECT_TRUE(st->columns[2].has_default);
  EXPECT_EQ(st->columns[2].default_value.i, 0);
}

TEST(ParserTest, LimitRangeChecked) {
  auto ok = MustParse("SELECT x FROM t ORDER BY x LIMIT 0");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->select->limit, 0);
  // Negative: the '-' lexes as an operator, so the literal is missing.
  auto neg = ParseOne("SELECT x FROM t LIMIT -1");
  EXPECT_FALSE(neg.ok());
  // Beyond int64: strtoll saturates, and the range check rejects it with a
  // real message instead of silently planning a 2^63-row slice.
  auto huge = ParseOne("SELECT x FROM t LIMIT 99999999999999999999");
  EXPECT_FALSE(huge.ok());
  EXPECT_NE(huge.status().ToString().find("out of range"), std::string::npos);
}

TEST(ParserTest, PaperGuardedUpdate) {
  auto st = MustParse(
      "UPDATE matrix SET v = CASE WHEN x > y THEN x + y "
      "WHEN x < y THEN x - y ELSE 0 END");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->kind, Statement::Kind::kUpdate);
  ASSERT_EQ(st->set_clauses.size(), 1u);
  EXPECT_EQ(st->set_clauses[0].second->kind, Expr::Kind::kCase);
}

TEST(ParserTest, PaperInsertSelectWithDimProjections) {
  auto st = MustParse(
      "INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->kind, Statement::Kind::kInsert);
  ASSERT_NE(st->select, nullptr);
  EXPECT_TRUE(st->select->items[0].is_dim);
  EXPECT_TRUE(st->select->items[1].is_dim);
  EXPECT_FALSE(st->select->items[2].is_dim);
}

TEST(ParserTest, PaperDeleteAndAlter) {
  auto del = MustParse("DELETE FROM matrix WHERE x > y");
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->kind, Statement::Kind::kDelete);

  auto alt =
      MustParse("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]");
  ASSERT_NE(alt, nullptr);
  EXPECT_EQ(alt->kind, Statement::Kind::kAlterArray);
  EXPECT_EQ(alt->new_range, array::DimRange(-1, 1, 5));
}

TEST(ParserTest, PaperTilingQuery) {
  auto st = MustParse(
      "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1 AND y MOD 2 = 1");
  ASSERT_NE(st, nullptr);
  const SelectStmt& sel = *st->select;
  ASSERT_TRUE(sel.group_by.has_value());
  EXPECT_TRUE(sel.group_by->structural);
  ASSERT_EQ(sel.group_by->patterns.size(), 1u);
  const TilePattern& pat = sel.group_by->patterns[0];
  EXPECT_EQ(pat.array, "matrix");
  ASSERT_EQ(pat.dims.size(), 2u);
  EXPECT_TRUE(pat.dims[0].is_range);
  ASSERT_NE(sel.having, nullptr);
}

TEST(ParserTest, ExplicitCellListTile) {
  auto st = MustParse(
      "SELECT [x], [y], SUM(v) FROM img "
      "GROUP BY img[x][y], img[x-1][y], img[x][y-1]");
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->select->group_by.has_value());
  EXPECT_EQ(st->select->group_by->patterns.size(), 3u);
  EXPECT_FALSE(st->select->group_by->patterns[0].dims[0].is_range);
}

TEST(ParserTest, CellReferenceExpression) {
  auto st = MustParse(
      "SELECT [x], [y], ABS(img[x][y] - img[x-1][y]) FROM img");
  ASSERT_NE(st, nullptr);
  const Expr& e = *st->select->items[2].expr;
  EXPECT_EQ(e.kind, Expr::Kind::kUnary);
  const Expr& sub = *e.children[0];
  EXPECT_EQ(sub.kind, Expr::Kind::kBinary);
  EXPECT_EQ(sub.children[0]->kind, Expr::Kind::kCellRef);
  EXPECT_EQ(sub.children[0]->array_name, "img");
  EXPECT_EQ(sub.children[0]->children.size(), 2u);
}

TEST(ParserTest, ValueGroupByVsStructural) {
  auto st = MustParse("SELECT v, COUNT(*) FROM img GROUP BY v");
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->select->group_by.has_value());
  EXPECT_FALSE(st->select->group_by->structural);
  ASSERT_EQ(st->select->group_by->keys.size(), 1u);
}

TEST(ParserTest, JoinsDesugarToWhere) {
  auto st = MustParse(
      "SELECT a.x FROM t a JOIN s b ON a.x = b.x WHERE a.y > 1");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->select->from.size(), 2u);
  ASSERT_NE(st->select->where, nullptr);
  // ON and WHERE combined with AND.
  EXPECT_EQ(st->select->where->bin_op, gdk::BinOp::kAnd);
}

TEST(ParserTest, OperatorPrecedence) {
  auto st = MustParse("SELECT 1 + 2 * 3");
  const Expr& e = *st->select->items[0].expr;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.bin_op, gdk::BinOp::kAdd);
  EXPECT_EQ(e.children[1]->bin_op, gdk::BinOp::kMul);

  auto cmp = MustParse("SELECT a + 1 > b AND c = 2 OR d < 3");
  const Expr& o = *cmp->select->items[0].expr;
  EXPECT_EQ(o.bin_op, gdk::BinOp::kOr);
  EXPECT_EQ(o.children[0]->bin_op, gdk::BinOp::kAnd);
}

TEST(ParserTest, BetweenInIsNull) {
  auto st = MustParse(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) "
      "AND c IS NOT NULL AND d NOT IN (4)");
  ASSERT_NE(st, nullptr);
}

TEST(ParserTest, OrderLimitDistinctiveClauses) {
  auto st = MustParse("SELECT x FROM t ORDER BY x DESC, y LIMIT 10");
  EXPECT_EQ(st->select->order_by.size(), 2u);
  EXPECT_TRUE(st->select->order_by[0].desc);
  EXPECT_FALSE(st->select->order_by[1].desc);
  EXPECT_EQ(st->select->limit, 10);
}

TEST(ParserTest, InsertValuesMultiRow) {
  auto st = MustParse("INSERT INTO t (x, y) VALUES (1, 2), (3, 4)");
  EXPECT_EQ(st->insert_columns.size(), 2u);
  EXPECT_EQ(st->insert_values.size(), 2u);
}

TEST(ParserTest, CreateAsSelect) {
  auto st = MustParse("CREATE ARRAY a2 AS SELECT [x], v FROM a1");
  EXPECT_EQ(st->kind, Statement::Kind::kCreateArray);
  ASSERT_NE(st->select, nullptr);
}

TEST(ParserTest, SubqueryInFromNeedsAlias) {
  EXPECT_FALSE(ParseOne("SELECT x FROM (SELECT x FROM t)").ok());
  EXPECT_TRUE(ParseOne("SELECT x FROM (SELECT x FROM t) AS s").ok());
}

TEST(ParserTest, MultipleStatements) {
  auto r = Parse("SELECT 1; SELECT 2;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParserTest, ErrorsCarryLocation) {
  auto r = ParseOne("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, ErrorOnTrailingGarbage) {
  EXPECT_FALSE(ParseOne("SELECT 1 SELECT 2").ok());
}

TEST(ParserTest, NegativeLiteralsFoldInRangesAndDefaults) {
  auto st = MustParse(
      "CREATE ARRAY a (x INT DIMENSION[-3:2:3], v DOUBLE DEFAULT -1.5)");
  EXPECT_EQ(st->columns[0].range, array::DimRange(-3, 2, 3));
  EXPECT_DOUBLE_EQ(st->columns[1].default_value.d, -1.5);
}

TEST(ParserTest, OutOfRangeIntegerLiteralIsAParseError) {
  // 2^63 without a unary minus does not fit int64; the lexer used to
  // saturate it silently to INT64_MAX.
  auto r = ParseOne("SELECT 9223372036854775808");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("out of range"), std::string::npos)
      << r.status().ToString();
  // Anything past 2^63 is rejected at lex time, minus or not.
  EXPECT_FALSE(ParseOne("SELECT 9223372036854775809").ok());
  EXPECT_FALSE(ParseOne("SELECT -9223372036854775809").ok());
  EXPECT_FALSE(ParseOne("SELECT 99999999999999999999").ok());
}

TEST(ParserTest, Int64MinLiteralRoundTrips) {
  // -9223372036854775808 is exactly INT64_MIN: the magnitude 2^63 is only
  // legal directly under a unary minus, and must fold to the exact value
  // (not saturate to -INT64_MAX).
  auto st = MustParse("SELECT -9223372036854775808");
  ASSERT_NE(st, nullptr);
  const Expr* e = st->select->items[0].expr.get();
  ASSERT_EQ(e->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(e->literal.type, gdk::PhysType::kLng);
  EXPECT_EQ(e->literal.i, std::numeric_limits<int64_t>::min());
  // Also through the VALUES literal path.
  auto ins = MustParse("INSERT INTO t VALUES (-9223372036854775808)");
  ASSERT_NE(ins, nullptr);
  ASSERT_EQ(ins->kind, Statement::Kind::kInsert);
}

TEST(ParserTest, DoubleNegatedInt64MinIsOutOfRange) {
  // -(-9223372036854775808) == 2^63 does not fit: the fold must reject it
  // instead of wrapping silently.
  auto r = ParseOne("SELECT -(-9223372036854775808)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("out of range"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, RoundTripToString) {
  const char* queries[] = {
      "SELECT [x], [y], AVG(v) FROM matrix GROUP BY matrix[x:x+2][y:y+2] "
      "HAVING x MOD 2 = 1",
      "SELECT x, y, v FROM mtable WHERE x = y ORDER BY x DESC LIMIT 3",
      "UPDATE m SET v = 0 WHERE x > y",
  };
  for (const char* q : queries) {
    auto st = MustParse(q);
    ASSERT_NE(st, nullptr);
    // The rendering must itself re-parse.
    auto again = ParseOne(st->ToString());
    EXPECT_TRUE(again.ok()) << st->ToString() << " -> "
                            << again.status().ToString();
  }
}

}  // namespace
}  // namespace sql
}  // namespace sciql
