#include "src/sql/lexer.h"

#include <gtest/gtest.h>

namespace sciql {
namespace sql {
namespace {

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto r = Tokenize("select Select SELECT");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);  // 3 + EOF
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*r)[i].IsKeyword("SELECT"));
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto r = Tokenize("MyTable");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*r)[0].text, "MyTable");
}

TEST(LexerTest, Numbers) {
  auto r = Tokenize("42 1.5 2e3 7.25e-1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*r)[0].int_val, 42);
  EXPECT_EQ((*r)[1].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*r)[1].float_val, 1.5);
  EXPECT_DOUBLE_EQ((*r)[2].float_val, 2000.0);
  EXPECT_DOUBLE_EQ((*r)[3].float_val, 0.725);
}

TEST(LexerTest, StringsWithEscapes) {
  auto r = Tokenize("'it''s'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kStrLiteral);
  EXPECT_EQ((*r)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, OperatorsIncludingBrackets) {
  auto r = Tokenize("[x:y] <= >= <> != =");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].IsOp("["));
  EXPECT_TRUE((*r)[2].IsOp(":"));
  EXPECT_TRUE((*r)[4].IsOp("]"));
  EXPECT_TRUE((*r)[5].IsOp("<="));
  EXPECT_TRUE((*r)[6].IsOp(">="));
  EXPECT_TRUE((*r)[7].IsOp("!="));  // <> normalizes
  EXPECT_TRUE((*r)[8].IsOp("!="));
  EXPECT_TRUE((*r)[9].IsOp("="));
}

TEST(LexerTest, CommentsSkipped) {
  auto r = Tokenize("1 -- comment\n2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].int_val, 1);
  EXPECT_EQ((*r)[1].int_val, 2);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto r = Tokenize("a\n  b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].line, 1u);
  EXPECT_EQ((*r)[1].line, 2u);
  EXPECT_EQ((*r)[1].col, 3u);
}

TEST(LexerTest, StrayCharacterFails) {
  EXPECT_FALSE(Tokenize("select @").ok());
}

TEST(LexerTest, QuotedIdentifier) {
  auto r = Tokenize("\"select\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*r)[0].text, "select");
}

}  // namespace
}  // namespace sql
}  // namespace sciql
