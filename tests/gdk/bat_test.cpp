#include "src/gdk/bat.h"

#include <gtest/gtest.h>

namespace sciql {
namespace gdk {
namespace {

TEST(BatTest, AppendAndGet) {
  auto b = BAT::Make(PhysType::kInt);
  ASSERT_TRUE(b->Append(ScalarValue::Int(1)).ok());
  ASSERT_TRUE(b->Append(ScalarValue::Null(PhysType::kInt)).ok());
  ASSERT_TRUE(b->Append(ScalarValue::Int(-7)).ok());
  EXPECT_EQ(b->Count(), 3u);
  EXPECT_EQ(b->GetScalar(0).i, 1);
  EXPECT_TRUE(b->GetScalar(1).is_null);
  EXPECT_EQ(b->GetScalar(2).i, -7);
  EXPECT_TRUE(b->IsNullAt(1));
  EXPECT_FALSE(b->IsNullAt(0));
  EXPECT_EQ(b->CountNulls(), 1u);
}

TEST(BatTest, NullSentinels) {
  auto b = BAT::Make(PhysType::kInt);
  ASSERT_TRUE(b->Append(ScalarValue::Null(PhysType::kInt)).ok());
  EXPECT_EQ(b->ints()[0], kIntNil);

  auto l = BAT::Make(PhysType::kLng);
  ASSERT_TRUE(l->Append(ScalarValue::Null(PhysType::kLng)).ok());
  EXPECT_EQ(l->lngs()[0], kLngNil);

  auto d = BAT::Make(PhysType::kDbl);
  ASSERT_TRUE(d->Append(ScalarValue::Null(PhysType::kDbl)).ok());
  EXPECT_TRUE(IsDblNil(d->dbls()[0]));
}

TEST(BatTest, AppendCastsAcrossNumericTypes) {
  auto d = BAT::Make(PhysType::kDbl);
  ASSERT_TRUE(d->Append(ScalarValue::Int(3)).ok());
  EXPECT_DOUBLE_EQ(d->dbls()[0], 3.0);

  auto i = BAT::Make(PhysType::kInt);
  ASSERT_TRUE(i->Append(ScalarValue::Dbl(2.9)).ok());
  EXPECT_EQ(i->ints()[0], 2);  // truncation
}

TEST(BatTest, SetAndSlice) {
  auto b = BAT::Make(PhysType::kInt);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b->Append(ScalarValue::Int(i)).ok());
  }
  ASSERT_TRUE(b->Set(4, ScalarValue::Int(99)).ok());
  EXPECT_EQ(b->ints()[4], 99);
  EXPECT_FALSE(b->Set(10, ScalarValue::Int(0)).ok());

  auto s = b->Slice(2, 5);
  EXPECT_EQ(s->Count(), 3u);
  EXPECT_EQ(s->ints()[0], 2);
  EXPECT_EQ(s->ints()[2], 99);

  auto empty = b->Slice(8, 3);
  EXPECT_EQ(empty->Count(), 0u);
}

TEST(BatTest, DenseSequence) {
  auto b = BAT::MakeDense(5, 4);
  ASSERT_EQ(b->Count(), 4u);
  EXPECT_EQ(b->oids()[0], 5u);
  EXPECT_EQ(b->oids()[3], 8u);
}

TEST(BatTest, ConstBroadcast) {
  auto b = BAT::MakeConst(ScalarValue::Dbl(1.5), 3);
  ASSERT_EQ(b->Count(), 3u);
  EXPECT_DOUBLE_EQ(b->dbls()[2], 1.5);
}

TEST(BatTest, StringsDeduplicateInHeap) {
  auto b = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(b->Append(ScalarValue::Str("hello")).ok());
  ASSERT_TRUE(b->Append(ScalarValue::Str("world")).ok());
  ASSERT_TRUE(b->Append(ScalarValue::Str("hello")).ok());
  ASSERT_TRUE(b->Append(ScalarValue::Null(PhysType::kStr)).ok());
  EXPECT_EQ(b->Count(), 4u);
  EXPECT_EQ(b->oids()[0], b->oids()[2]);  // duplicate elimination
  EXPECT_EQ(b->GetStr(1), "world");
  EXPECT_TRUE(b->IsNullAt(3));
  EXPECT_EQ(b->heap()->UniqueCount(), 2u);
}

TEST(BatTest, AppendBatSameHeapSharesOffsets) {
  auto a = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(a->Append(ScalarValue::Str("x")).ok());
  auto b = BAT::MakeStr(a->heap());
  ASSERT_TRUE(b->Append(ScalarValue::Str("y")).ok());
  ASSERT_TRUE(a->AppendBat(*b).ok());
  EXPECT_EQ(a->Count(), 2u);
  EXPECT_EQ(a->GetStr(1), "y");
}

TEST(BatTest, AppendBatForeignHeapReinterns) {
  auto a = BAT::Make(PhysType::kStr);
  auto b = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(b->Append(ScalarValue::Str("z")).ok());
  ASSERT_TRUE(a->AppendBat(*b).ok());
  EXPECT_EQ(a->GetStr(0), "z");
}

TEST(BatTest, AppendBatTypeMismatchFails) {
  auto a = BAT::Make(PhysType::kInt);
  auto b = BAT::Make(PhysType::kDbl);
  ASSERT_TRUE(b->Append(ScalarValue::Dbl(1)).ok());
  EXPECT_FALSE(a->AppendBat(*b).ok());
}

TEST(BatTest, CloneDataIsDeep) {
  auto a = BAT::Make(PhysType::kInt);
  ASSERT_TRUE(a->Append(ScalarValue::Int(1)).ok());
  auto c = a->CloneData();
  ASSERT_TRUE(c->Set(0, ScalarValue::Int(2)).ok());
  EXPECT_EQ(a->ints()[0], 1);
  EXPECT_EQ(c->ints()[0], 2);
}

TEST(BatTest, ResizeFillsWithNil) {
  auto a = BAT::Make(PhysType::kInt);
  ASSERT_TRUE(a->Append(ScalarValue::Int(1)).ok());
  a->Resize(3);
  EXPECT_TRUE(a->IsNullAt(2));
}

TEST(ScalarValueTest, ToStringForms) {
  EXPECT_EQ(ScalarValue::Int(5).ToString(), "5");
  EXPECT_EQ(ScalarValue::Dbl(1.5).ToString(), "1.5");
  EXPECT_EQ(ScalarValue::Str("a'b").ToString(), "'a'b'");
  EXPECT_EQ(ScalarValue::Null(PhysType::kInt).ToString(), "null");
  EXPECT_EQ(ScalarValue::Bit(true).ToString(), "true");
}

TEST(ScalarValueTest, CastScalarRangeChecks) {
  auto too_big = CastScalar(ScalarValue::Lng(int64_t{1} << 40), PhysType::kInt);
  EXPECT_FALSE(too_big.ok());
  auto ok = CastScalar(ScalarValue::Lng(41), PhysType::kInt);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->i, 41);
  auto neg_oid = CastScalar(ScalarValue::Int(-2), PhysType::kOid);
  EXPECT_FALSE(neg_oid.ok());
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
