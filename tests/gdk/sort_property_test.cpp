// Property tests for the parallel sort / order-index subsystem: sorted
// output is a permutation, ties keep row order (stability), the persistent
// order index agrees with a full sort, and the index-served RangeSelect and
// ordered join probe return exactly what the scan/hash paths return.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

#include "tests/support/telemetry_probe.h"

namespace sciql {
namespace gdk {
namespace {

// Sizes straddling the 64K morsel boundary so both the sequential and the
// partitioned merge-tree paths run.
const size_t kSizes[] = {0, 1, 2, 777, 65536, 3 * 65536 + 1234};

BATPtr RandomInts(size_t n, uint64_t seed, uint64_t domain, bool with_nulls) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kInt);
  b->ints().resize(n);
  for (auto& v : b->ints()) {
    if (with_nulls && rng.Below(23) == 0) {
      v = kIntNil;
    } else {
      v = static_cast<int32_t>(rng.Below(domain)) - static_cast<int32_t>(domain / 2);
    }
  }
  return b;
}

BATPtr RandomDbls(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kDbl);
  b->dbls().resize(n);
  for (auto& v : b->dbls()) {
    uint64_t k = rng.Below(41);
    if (k == 0) {
      v = DblNil();
    } else if (k == 1) {
      v = rng.Chance(0.5) ? 0.0 : -0.0;
    } else {
      v = static_cast<double>(rng.Below(10000)) / 7.0 - 500.0;
    }
  }
  return b;
}

// nil-first three-way compare mirroring the documented sort contract.
int CompareRows(const BAT& b, oid_t i, oid_t j) {
  bool ni = b.IsNullAt(i);
  bool nj = b.IsNullAt(j);
  if (ni || nj) return (ni ? 0 : 1) - (nj ? 0 : 1);
  ScalarValue a = b.GetScalar(i);
  ScalarValue c = b.GetScalar(j);
  if (b.type() == PhysType::kStr) {
    return a.s < c.s ? -1 : (a.s == c.s ? 0 : 1);
  }
  double x = a.AsDouble();
  double y = c.AsDouble();
  return (x > y) - (x < y);
}

void CheckOrderIndexProperties(const BAT& b, bool desc) {
  auto r = OrderIndex({&b}, {desc});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& idx = (*r)->oids();
  size_t n = b.Count();
  ASSERT_EQ(idx.size(), n);

  // Permutation of [0, n).
  std::vector<uint8_t> seen(n, 0);
  for (oid_t o : idx) {
    ASSERT_LT(o, n);
    ASSERT_EQ(seen[o], 0) << "row " << o << " appears twice";
    seen[o] = 1;
  }

  // Ordered, and stable on ties (equal keys keep ascending row order).
  for (size_t i = 1; i < n; ++i) {
    int cmp = CompareRows(b, idx[i - 1], idx[i]);
    if (desc) cmp = -cmp;
    ASSERT_LE(cmp, 0) << "out of order at position " << i;
    if (cmp == 0) {
      ASSERT_LT(idx[i - 1], idx[i]) << "tie broke stability at " << i;
    }
  }
}

TEST(SortProperty, OrderIndexIsStableSortedPermutation) {
  for (int threads : {1, 8}) {
    ThreadPool::Get().SetThreadCount(threads);
    for (size_t n : kSizes) {
      auto ints = RandomInts(n, 100 + n, 50, true);  // duplicate-heavy
      CheckOrderIndexProperties(*ints, false);
      ints->InvalidateOrderIndex();
      CheckOrderIndexProperties(*ints, true);
      auto dbls = RandomDbls(n, 200 + n);
      CheckOrderIndexProperties(*dbls, false);
    }
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(SortProperty, SortBatIsOrderedPermutationOfValues) {
  ThreadPool::Get().SetThreadCount(8);
  auto b = RandomInts(3 * 65536 + 17, 7, 1000, true);
  auto sorted = SortBat(*b, false);
  ASSERT_TRUE(sorted.ok());
  // Same multiset of values.
  std::vector<int32_t> in = b->ints();
  std::vector<int32_t> out = (*sorted)->ints();
  ASSERT_EQ(in.size(), out.size());
  std::sort(in.begin(), in.end());
  std::vector<int32_t> out_copy = out;
  std::sort(out_copy.begin(), out_copy.end());
  EXPECT_EQ(in, out_copy);
  // Ordered nil-first (kIntNil is INT32_MIN, so plain <= covers it).
  for (size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1], out[i]);
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(SortProperty, EnsureOrderIndexCachesAndAgreesWithFullSort) {
  auto b = RandomInts(100000, 11, 500, true);
  ASSERT_EQ(b->order_index(), nullptr);
  auto idx = EnsureOrderIndex(*b);
  ASSERT_TRUE(idx.ok());
  ASSERT_NE(b->order_index(), nullptr);
  // Second call returns the same build.
  auto idx2 = EnsureOrderIndex(*b);
  ASSERT_TRUE(idx2.ok());
  EXPECT_EQ(idx->get(), idx2->get());
  // The cached index equals the ascending OrderIndex permutation.
  b->InvalidateOrderIndex();
  auto full = OrderIndex({b.get()}, {false});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(**idx, (*full)->oids());
}

TEST(SortProperty, MutationInvalidatesOrderIndex) {
  auto b = RandomInts(1000, 13, 100, false);
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  ASSERT_NE(b->order_index(), nullptr);
  ASSERT_TRUE(b->Set(3, ScalarValue::Int(-999)).ok());
  EXPECT_EQ(b->order_index(), nullptr);

  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  ASSERT_TRUE(b->Append(ScalarValue::Int(42)).ok());
  EXPECT_EQ(b->order_index(), nullptr);

  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  b->ints();  // any mutable tail handle drops the cache
  EXPECT_EQ(b->order_index(), nullptr);

  // A value-identical clone keeps the index; a rebuilt one is correct.
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  auto clone = b->CloneData();
  EXPECT_NE(clone->order_index(), nullptr);
  CheckOrderIndexProperties(*clone, false);
}

TEST(SortProperty, RangeSelectViaIndexMatchesScan) {
  for (size_t n : {size_t(0), size_t(1000), size_t(90000)}) {
    auto b = RandomDbls(n, 300 + n);
    // Scan path first (no index), then the same selects through the index.
    struct Win {
      double lo, hi;
      bool li, hi_incl;
    };
    std::vector<Win> wins = {{-100.0, 100.0, true, true},
                             {-100.0, 100.0, false, false},
                             {50.0, 50.0, true, true},
                             {200.0, -200.0, true, true},  // empty window
                             {-1e9, 1e9, true, true}};
    std::vector<std::vector<oid_t>> scanned;
    for (const Win& w : wins) {
      auto r = RangeSelect(*b, nullptr, ScalarValue::Dbl(w.lo),
                           ScalarValue::Dbl(w.hi), w.li, w.hi_incl);
      ASSERT_TRUE(r.ok());
      scanned.push_back((*r)->oids());
    }
    ASSERT_TRUE(EnsureOrderIndex(*b).ok());
    ASSERT_NE(b->order_index(), nullptr);
    for (size_t i = 0; i < wins.size(); ++i) {
      const Win& w = wins[i];
      auto r = RangeSelect(*b, nullptr, ScalarValue::Dbl(w.lo),
                           ScalarValue::Dbl(w.hi), w.li, w.hi_incl);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ((*r)->oids(), scanned[i]) << "window " << i << " n=" << n;
    }
    // Candidate-driven selects must ignore the index (different contract).
    auto cands = BAT::MakeDense(0, n);
    auto with_cands =
        RangeSelect(*b, cands.get(), ScalarValue::Dbl(-100.0),
                    ScalarValue::Dbl(100.0), true, true);
    ASSERT_TRUE(with_cands.ok());
    EXPECT_EQ((*with_cands)->oids(), scanned[0]);
  }
}

// Canonical pair multiset of a join result for order-insensitive compares.
std::vector<std::pair<oid_t, oid_t>> SortedPairs(const JoinResult& jr) {
  std::vector<std::pair<oid_t, oid_t>> pairs;
  const auto& l = jr.left->oids();
  const auto& r = jr.right->oids();
  pairs.reserve(l.size());
  for (size_t i = 0; i < l.size(); ++i) pairs.emplace_back(l[i], r[i]);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(SortProperty, OrderedJoinProbeMatchesHashJoin) {
  // The LARGE side carries the index: HashJoin flips it into the build role
  // and binary-searches it per small-side row instead of scanning it. The
  // pair multiset must match the hash join exactly (pair order follows the
  // probe side, which the flip changes, so compare canonically).
  for (int threads : {1, 8}) {
    ThreadPool::Get().SetThreadCount(threads);
    auto small = RandomInts(5000, 19, 300, true);   // dup-heavy, with nils
    auto large = RandomInts(120000, 23, 300, true);
    auto hash = HashJoin(*small, *large);
    ASSERT_TRUE(hash.ok());
    ASSERT_TRUE(EnsureOrderIndex(*large).ok());
    auto ordered = HashJoin(*small, *large);
    ASSERT_TRUE(ordered.ok());
    ASSERT_GT(hash->left->Count(), 0u);
    EXPECT_EQ(SortedPairs(*hash), SortedPairs(*ordered));
    // Flip ordering contract: pairs ordered by (non-indexed) left row, with
    // ascending right (indexed) oids per left row.
    const auto& lo = ordered->left->oids();
    const auto& ro = ordered->right->oids();
    for (size_t i = 1; i < lo.size(); ++i) {
      ASSERT_TRUE(lo[i - 1] < lo[i] ||
                  (lo[i - 1] == lo[i] && ro[i - 1] < ro[i]));
    }
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(SortProperty, SmallSideIndexKeepsHashPath) {
  // An index on the smaller side is never profitable; output must be the
  // hash join's, bit for bit.
  auto small = RandomInts(3000, 37, 100, true);
  auto large = RandomInts(100000, 41, 100, true);
  auto hash = HashJoin(*small, *large);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(EnsureOrderIndex(*small).ok());
  auto again = HashJoin(*small, *large);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(hash->left->oids(), again->left->oids());
  EXPECT_EQ(hash->right->oids(), again->right->oids());
}

TEST(SortProperty, OrderedJoinProbeDblZeroSigns) {
  // Indexed large side holding both zero signs; both probe-side zero signs
  // must match both of them (the sort key collapses -0.0 onto 0.0, matching
  // operator== and the hash path's KeyBits normalization).
  auto large = BAT::Make(PhysType::kDbl);
  large->dbls().assign(1000, 7.5);
  large->dbls()[10] = -0.0;
  large->dbls()[500] = 0.0;
  large->dbls()[700] = DblNil();
  large->dbls()[900] = 2.0;
  auto small = BAT::Make(PhysType::kDbl);
  small->dbls() = {0.0, -0.0, 2.0, DblNil(), 5.0};
  auto hash = HashJoin(*small, *large);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(EnsureOrderIndex(*large).ok());
  auto ordered = HashJoin(*small, *large);
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(SortedPairs(*hash), SortedPairs(*ordered));
  // 2 zero probes x 2 zero build rows + one 2.0 match.
  EXPECT_EQ(ordered->left->Count(), 5u);
}

TEST(SortProperty, MultiKeyOrderIndexLexicographic) {
  auto k1 = RandomInts(50000, 29, 8, true);
  auto k2 = RandomInts(50000, 31, 1000, true);
  auto r = OrderIndex({k1.get(), k2.get()}, {false, true});
  ASSERT_TRUE(r.ok());
  const auto& idx = (*r)->oids();
  for (size_t i = 1; i < idx.size(); ++i) {
    int c1 = CompareRows(*k1, idx[i - 1], idx[i]);
    ASSERT_LE(c1, 0);
    if (c1 == 0) {
      int c2 = -CompareRows(*k2, idx[i - 1], idx[i]);  // desc
      ASSERT_LE(c2, 0);
      if (c2 == 0) ASSERT_LT(idx[i - 1], idx[i]);
    }
  }
}

// --------------------------------------------------------------------------
// FirstN (top-k) and the both-sides-indexed merge join
// --------------------------------------------------------------------------

// FirstN over any keys equals the full stable sort truncated to k — across
// sizes straddling the morsel boundary, ascending/descending/multi-key, and
// k values hitting the heap path, the k >= n/2 sort fallback and the
// k > n clamp.
TEST(SortProperty, FirstNEqualsFullSortPrefix) {
  for (int threads : {1, 8}) {
    ThreadPool::Get().SetThreadCount(threads);
    for (size_t n : kSizes) {
      auto k1 = RandomInts(n, 500 + n, 40, true);  // duplicate-heavy
      auto k2 = RandomDbls(n, 600 + n);
      const std::vector<std::vector<bool>> descs = {{false}, {true}};
      for (const auto& desc : descs) {
        k1->InvalidateOrderIndex();
        auto full = OrderIndex({k1.get()}, desc);
        ASSERT_TRUE(full.ok());
        for (size_t k : {size_t{0}, size_t{1}, size_t{100}, n / 2 + 1,
                         n + 17}) {
          std::vector<oid_t> expect(
              full->get()->oids().begin(),
              full->get()->oids().begin() +
                  static_cast<ptrdiff_t>(std::min(k, n)));
          k1->InvalidateOrderIndex();  // force the heap / sort-fallback path
          auto got = FirstN({k1.get()}, desc, k);
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got->get()->oids(), expect)
              << "n=" << n << " k=" << k << " desc=" << desc[0]
              << " threads=" << threads;
        }
      }
      // Multi-key (int asc, dbl desc).
      auto full = OrderIndex({k1.get(), k2.get()}, {false, true});
      ASSERT_TRUE(full.ok());
      size_t k = std::min<size_t>(n, 250);
      std::vector<oid_t> expect(
          full->get()->oids().begin(),
          full->get()->oids().begin() + static_cast<ptrdiff_t>(k));
      auto got = FirstN({k1.get(), k2.get()}, {false, true}, k);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->get()->oids(), expect) << "multi-key n=" << n;
    }
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(SortProperty, FirstNServedFromCachedIndexWindow) {
  auto b = RandomInts(100000, 71, 5000, true);
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  const auto& ord = *b->order_index();
  testsupport::TestProbe().Rebase();
  auto got = FirstN({b.get()}, {false}, 25);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_index_window, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_heap, 0u);
  EXPECT_EQ(got->get()->oids(),
            std::vector<oid_t>(ord.begin(), ord.begin() + 25));
  // Without the cache the same query runs the bounded heaps instead.
  b->InvalidateOrderIndex();
  testsupport::TestProbe().Rebase();
  auto heap = FirstN({b.get()}, {false}, 25);
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_index_window, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_heap, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_sort_fallback, 0u);
  EXPECT_EQ(heap->get()->oids(), got->get()->oids());
  // k >= n/2 routes to the full-sort fallback (and says so).
  b->InvalidateOrderIndex();
  testsupport::TestProbe().Rebase();
  auto most = FirstN({b.get()}, {false}, 60000);
  ASSERT_TRUE(most.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_sort_fallback, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_heap, 0u);
  EXPECT_EQ(most->get()->Count(), 60000u);
}

TEST(SortProperty, MergeJoinBothSidesIndexedIsBitIdenticalToHash) {
  // With order indexes on BOTH sides — and the sides within a log factor
  // of each other, so the one-sided binary-search gate stays closed — the
  // join must take the merge path: no hash table, and still the hash
  // join's exact output (same pairs in the same order, not merely the
  // same multiset).
  auto small = RandomInts(60000, 83, 300, true);  // dup-heavy, with nils
  auto large = RandomInts(120000, 89, 300, true);
  testsupport::TestProbe().Rebase();
  auto hash = HashJoin(*small, *large);
  ASSERT_TRUE(hash.ok());
  ASSERT_EQ(testsupport::TestProbe().delta().joins_hash, 1u);
  ASSERT_GT(hash->left->Count(), 0u);
  ASSERT_TRUE(EnsureOrderIndex(*small).ok());
  ASSERT_TRUE(EnsureOrderIndex(*large).ok());
  for (int threads : {1, 2, 8}) {
    ThreadPool::Get().SetThreadCount(threads);
    testsupport::TestProbe().Rebase();
    auto merged = HashJoin(*small, *large);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(testsupport::TestProbe().delta().joins_merge, 1u) << "threads=" << threads;
    EXPECT_EQ(testsupport::TestProbe().delta().joins_hash, 0u) << "threads=" << threads;
    EXPECT_EQ(testsupport::TestProbe().delta().joins_indexed_probe, 0u);
    EXPECT_EQ(hash->left->oids(), merged->left->oids());
    EXPECT_EQ(hash->right->oids(), merged->right->oids());
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(SortProperty, TinyBuildSideKeepsIndexedProbeOverMerge) {
  // Both sides indexed but the build side is tiny: the cost-gated
  // binary-search probe (nb * log2(np) work, no O(np) run bookkeeping)
  // must win over walking the large index linearly.
  auto tiny = RandomInts(50, 91, 30, true);
  auto large = RandomInts(120000, 97, 30, true);
  auto hash = HashJoin(*tiny, *large);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(EnsureOrderIndex(*tiny).ok());
  ASSERT_TRUE(EnsureOrderIndex(*large).ok());
  testsupport::TestProbe().Rebase();
  auto probed = HashJoin(*tiny, *large);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().joins_indexed_probe, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().joins_merge, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().joins_hash, 0u);
  EXPECT_EQ(SortedPairs(*hash), SortedPairs(*probed));
}

TEST(SortProperty, MergeJoinDblZeroSignsAndNils) {
  // -0.0 and 0.0 are one key; NaN is the dbl nil and never matches. The
  // merge path must agree with the hash path on both.
  auto mk = [](std::initializer_list<double> vals) {
    auto b = BAT::Make(PhysType::kDbl);
    b->dbls() = vals;
    return b;
  };
  auto l = mk({0.0, 1.5, DblNil(), -0.0, 2.5});
  auto r = mk({-0.0, DblNil(), 2.5, 0.0, 7.0, 1.5});
  auto hash = HashJoin(*l, *r);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(EnsureOrderIndex(*l).ok());
  ASSERT_TRUE(EnsureOrderIndex(*r).ok());
  testsupport::TestProbe().Rebase();
  auto merged = HashJoin(*l, *r);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().joins_merge, 1u);
  EXPECT_EQ(SortedPairs(*hash), SortedPairs(*merged));
  EXPECT_EQ(hash->left->oids(), merged->left->oids());
  EXPECT_EQ(hash->right->oids(), merged->right->oids());
  // 0.0/-0.0 cross-match: l rows {0,3} x r rows {0,3}, plus 1.5, 2.5.
  EXPECT_EQ(merged->left->Count(), 6u);
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
