#include <gtest/gtest.h>

#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {
namespace {

BATPtr IntBat(std::initializer_list<int32_t> vals) {
  auto b = BAT::Make(PhysType::kInt);
  for (int32_t v : vals) b->ints().push_back(v);
  return b;
}

TEST(GroupTest, SingleColumn) {
  auto b = IntBat({7, 8, 7, 9, 8});
  auto g = Group(*b, nullptr, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 3u);
  EXPECT_EQ(g->groups->oids(), (std::vector<oid_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(g->extents->oids(), (std::vector<oid_t>{0, 1, 3}));
}

TEST(GroupTest, NullsFormOneGroup) {
  auto b = IntBat({kIntNil, 1, kIntNil});
  auto g = Group(*b, nullptr, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 2u);
  EXPECT_EQ(g->groups->oids()[0], g->groups->oids()[2]);
}

TEST(GroupTest, RefinementSplitsGroups) {
  auto a = IntBat({1, 1, 2, 2});
  auto b = IntBat({5, 6, 5, 5});
  auto g1 = Group(*a, nullptr, 0);
  ASSERT_TRUE(g1.ok());
  auto g2 = Group(*b, g1->groups.get(), g1->ngroups);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->ngroups, 3u);  // (1,5), (1,6), (2,5)
}

TEST(GroupTest, StringGrouping) {
  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("a")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("b")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("a")).ok());
  auto g = Group(*s, nullptr, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 2u);
}

TEST(AggrTest, SumWidensToLng) {
  auto v = IntBat({1, 2, 3, 4});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0, 1, 1};
  auto r = GroupedAggregate(AggOp::kSum, v.get(), *groups, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kLng);
  EXPECT_EQ((*r)->lngs(), (std::vector<int64_t>{3, 7}));
}

TEST(AggrTest, AvgIgnoresNulls) {
  auto v = IntBat({4, kIntNil, 2});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0, 0};
  auto r = GroupedAggregate(AggOp::kAvg, v.get(), *groups, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)->dbls()[0], 3.0);
}

TEST(AggrTest, EmptyGroupYieldsNullButCountZero) {
  auto v = IntBat({1});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {1};  // group 0 stays empty
  auto sum = GroupedAggregate(AggOp::kSum, v.get(), *groups, 2);
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE((*sum)->IsNullAt(0));
  EXPECT_EQ((*sum)->lngs()[1], 1);
  auto cnt = GroupedAggregate(AggOp::kCount, v.get(), *groups, 2);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->lngs()[0], 0);
}

TEST(AggrTest, MinMaxKeepOrderAndSkipNulls) {
  auto v = IntBat({5, kIntNil, -2, 9});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0, 0, 1};
  auto mn = GroupedAggregate(AggOp::kMin, v.get(), *groups, 2);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ((*mn)->GetScalar(0).AsInt64(), -2);
  auto mx = GroupedAggregate(AggOp::kMax, v.get(), *groups, 2);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ((*mx)->GetScalar(0).AsInt64(), 5);
  EXPECT_EQ((*mx)->GetScalar(1).AsInt64(), 9);
}

TEST(AggrTest, CountStar) {
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 1, 1, 1};
  auto r = GroupedAggregate(AggOp::kCountStar, nullptr, *groups, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->lngs(), (std::vector<int64_t>{1, 3}));
}

TEST(AggrTest, DoubleSum) {
  auto v = BAT::Make(PhysType::kDbl);
  v->dbls() = {1.5, 2.5};
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0};
  auto r = GroupedAggregate(AggOp::kSum, v.get(), *groups, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kDbl);
  EXPECT_DOUBLE_EQ((*r)->dbls()[0], 4.0);
}

TEST(AggrTest, StringMinMax) {
  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("pear")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("apple")).ok());
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0};
  auto mn = GroupedAggregate(AggOp::kMin, s.get(), *groups, 1);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ((*mn)->GetScalar(0).s, "apple");
}

TEST(AggrTest, WholeBatAggregate) {
  auto v = IntBat({1, 2, 3});
  auto r = Aggregate(AggOp::kSum, *v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt64(), 6);
  auto e = BAT::Make(PhysType::kInt);
  auto rn = Aggregate(AggOp::kSum, *e);
  ASSERT_TRUE(rn.ok());
  EXPECT_TRUE(rn->is_null);
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
