#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/gdk/kernels.h"

#include "tests/support/telemetry_probe.h"

namespace sciql {
namespace gdk {
namespace {

BATPtr IntBat(std::initializer_list<int32_t> vals) {
  auto b = BAT::Make(PhysType::kInt);
  for (int32_t v : vals) b->ints().push_back(v);
  return b;
}

TEST(GroupTest, SingleColumn) {
  auto b = IntBat({7, 8, 7, 9, 8});
  auto g = Group(*b, nullptr, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 3u);
  EXPECT_EQ(g->groups->oids(), (std::vector<oid_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(g->extents->oids(), (std::vector<oid_t>{0, 1, 3}));
}

TEST(GroupTest, NullsFormOneGroup) {
  auto b = IntBat({kIntNil, 1, kIntNil});
  auto g = Group(*b, nullptr, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 2u);
  EXPECT_EQ(g->groups->oids()[0], g->groups->oids()[2]);
}

TEST(GroupTest, RefinementSplitsGroups) {
  auto a = IntBat({1, 1, 2, 2});
  auto b = IntBat({5, 6, 5, 5});
  auto g1 = Group(*a, nullptr, 0);
  ASSERT_TRUE(g1.ok());
  auto g2 = Group(*b, g1->groups.get(), g1->ngroups);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->ngroups, 3u);  // (1,5), (1,6), (2,5)
}

TEST(GroupTest, StringGrouping) {
  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("a")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("b")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("a")).ok());
  auto g = Group(*s, nullptr, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 2u);
}

TEST(AggrTest, SumWidensToLng) {
  auto v = IntBat({1, 2, 3, 4});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0, 1, 1};
  auto r = GroupedAggregate(AggOp::kSum, v.get(), *groups, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kLng);
  EXPECT_EQ((*r)->lngs(), (std::vector<int64_t>{3, 7}));
}

TEST(AggrTest, AvgIgnoresNulls) {
  auto v = IntBat({4, kIntNil, 2});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0, 0};
  auto r = GroupedAggregate(AggOp::kAvg, v.get(), *groups, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)->dbls()[0], 3.0);
}

TEST(AggrTest, EmptyGroupYieldsNullButCountZero) {
  auto v = IntBat({1});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {1};  // group 0 stays empty
  auto sum = GroupedAggregate(AggOp::kSum, v.get(), *groups, 2);
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE((*sum)->IsNullAt(0));
  EXPECT_EQ((*sum)->lngs()[1], 1);
  auto cnt = GroupedAggregate(AggOp::kCount, v.get(), *groups, 2);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->lngs()[0], 0);
}

TEST(AggrTest, MinMaxKeepOrderAndSkipNulls) {
  auto v = IntBat({5, kIntNil, -2, 9});
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0, 0, 1};
  auto mn = GroupedAggregate(AggOp::kMin, v.get(), *groups, 2);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ((*mn)->GetScalar(0).AsInt64(), -2);
  auto mx = GroupedAggregate(AggOp::kMax, v.get(), *groups, 2);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ((*mx)->GetScalar(0).AsInt64(), 5);
  EXPECT_EQ((*mx)->GetScalar(1).AsInt64(), 9);
}

TEST(AggrTest, CountStar) {
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 1, 1, 1};
  auto r = GroupedAggregate(AggOp::kCountStar, nullptr, *groups, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->lngs(), (std::vector<int64_t>{1, 3}));
}

TEST(AggrTest, DoubleSum) {
  auto v = BAT::Make(PhysType::kDbl);
  v->dbls() = {1.5, 2.5};
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0};
  auto r = GroupedAggregate(AggOp::kSum, v.get(), *groups, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kDbl);
  EXPECT_DOUBLE_EQ((*r)->dbls()[0], 4.0);
}

TEST(AggrTest, StringMinMax) {
  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("pear")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("apple")).ok());
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids() = {0, 0};
  auto mn = GroupedAggregate(AggOp::kMin, s.get(), *groups, 1);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ((*mn)->GetScalar(0).s, "apple");
}

TEST(AggrTest, WholeBatAggregate) {
  auto v = IntBat({1, 2, 3});
  auto r = Aggregate(AggOp::kSum, *v);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt64(), 6);
  auto e = BAT::Make(PhysType::kInt);
  auto rn = Aggregate(AggOp::kSum, *e);
  ASSERT_TRUE(rn.ok());
  EXPECT_TRUE(rn->is_null);
}

// MIN/MAX over doubles must be a pure function of the value multiset: a NaN
// (the dbl nil sentinel) must produce the same result wherever it sits in
// the row order — including at row 0, where a NaN-unsafe `<` chain would
// let it poison the accumulator, and at morsel boundaries, where the
// parallel partials merge. Every rotation of the input must agree.
TEST(AggrTest, DoubleMinMaxNaNPositionInvariant) {
  const std::vector<double> base = {3.5,      -1.25, DblNil(), 7.0,
                                    DblNil(), 0.0,   -0.0,     2.5};
  for (size_t rot = 0; rot < base.size(); ++rot) {
    auto v = BAT::Make(PhysType::kDbl);
    v->dbls() = base;
    std::rotate(v->dbls().begin(), v->dbls().begin() + rot, v->dbls().end());
    auto mn = Aggregate(AggOp::kMin, *v);
    ASSERT_TRUE(mn.ok());
    EXPECT_FALSE(mn->is_null) << "rotation " << rot;
    EXPECT_EQ(mn->d, -1.25) << "rotation " << rot;
    auto mx = Aggregate(AggOp::kMax, *v);
    ASSERT_TRUE(mx.ok());
    EXPECT_EQ(mx->d, 7.0) << "rotation " << rot;
  }
  // All-NaN input is NULL regardless of length.
  auto all_nan = BAT::Make(PhysType::kDbl);
  all_nan->dbls() = {DblNil(), DblNil(), DblNil()};
  auto mn = Aggregate(AggOp::kMin, *all_nan);
  ASSERT_TRUE(mn.ok());
  EXPECT_TRUE(mn->is_null);
}

// The same invariance across morsel boundaries: big input, NaNs moved
// between the first and the last morsel, grouped and ungrouped results
// must not change.
TEST(AggrTest, DoubleMinMaxNaNAcrossMorsels) {
  constexpr size_t kN = 200000;  // several 64K morsels
  auto make = [&](size_t nan_at) {
    auto v = BAT::Make(PhysType::kDbl);
    v->dbls().resize(kN);
    for (size_t i = 0; i < kN; ++i) {
      v->dbls()[i] = static_cast<double>((i * 37) % 1000) - 500.0;
    }
    v->dbls()[nan_at] = DblNil();
    return v;
  };
  for (size_t nan_at : {size_t{0}, size_t{70000}, kN - 1}) {
    auto v = make(nan_at);
    auto mn = Aggregate(AggOp::kMin, *v);
    auto mx = Aggregate(AggOp::kMax, *v);
    ASSERT_TRUE(mn.ok());
    ASSERT_TRUE(mx.ok());
    EXPECT_EQ(mn->d, -500.0) << "nan at " << nan_at;
    EXPECT_EQ(mx->d, 499.0) << "nan at " << nan_at;
  }
}

// Ungrouped MIN/MAX with a live order index reads the index endpoints (nil
// prefix skipped) instead of scanning; without one it scans as before.
TEST(AggrTest, IndexBackedMinMax) {
  auto v = IntBat({5, kIntNil, -2, 9, kIntNil, 7});
  testsupport::TestProbe().Rebase();
  auto scan_mn = Aggregate(AggOp::kMin, *v);
  auto scan_mx = Aggregate(AggOp::kMax, *v);
  ASSERT_TRUE(scan_mn.ok());
  ASSERT_TRUE(scan_mx.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().minmax_index, 0u);
  ASSERT_TRUE(EnsureOrderIndex(*v).ok());
  testsupport::TestProbe().Rebase();
  auto idx_mn = Aggregate(AggOp::kMin, *v);
  auto idx_mx = Aggregate(AggOp::kMax, *v);
  ASSERT_TRUE(idx_mn.ok());
  ASSERT_TRUE(idx_mx.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().minmax_index, 2u);
  EXPECT_EQ(idx_mn->AsInt64(), scan_mn->AsInt64());
  EXPECT_EQ(idx_mx->AsInt64(), scan_mx->AsInt64());
  EXPECT_EQ(idx_mn->AsInt64(), -2);
  EXPECT_EQ(idx_mx->AsInt64(), 9);
  // Mutation drops the index; the next aggregate scans the new values.
  ASSERT_TRUE(v->Set(0, ScalarValue::Int(-100)).ok());
  testsupport::TestProbe().Rebase();
  auto after = Aggregate(AggOp::kMin, *v);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().minmax_index, 0u);
  EXPECT_EQ(after->AsInt64(), -100);
}

// The scan path keeps the first-arriving row among ties; the index path
// must pick the same representative or cached-index state would change the
// bit pattern of MAX over mixed -0.0/0.0.
TEST(AggrTest, IndexBackedMinMaxTieRepresentativeMatchesScan) {
  auto v = BAT::Make(PhysType::kDbl);
  v->dbls() = {0.0, 3.5, -0.0, 3.5, DblNil(), -2.0, -0.0, 0.0, -2.0};
  auto scan_mn = Aggregate(AggOp::kMin, *v);
  auto scan_mx = Aggregate(AggOp::kMax, *v);
  ASSERT_TRUE(scan_mn.ok());
  ASSERT_TRUE(scan_mx.ok());
  ASSERT_TRUE(EnsureOrderIndex(*v).ok());
  auto idx_mn = Aggregate(AggOp::kMin, *v);
  auto idx_mx = Aggregate(AggOp::kMax, *v);
  ASSERT_TRUE(idx_mn.ok());
  ASSERT_TRUE(idx_mx.ok());
  EXPECT_EQ(std::signbit(idx_mn->d), std::signbit(scan_mn->d));
  EXPECT_EQ(idx_mn->d, scan_mn->d);
  EXPECT_EQ(std::signbit(idx_mx->d), std::signbit(scan_mx->d));
  EXPECT_EQ(idx_mx->d, scan_mx->d);

  // Zero-only column: MAX ties across +0.0/-0.0; scan keeps row 0's -0.0.
  auto z = BAT::Make(PhysType::kDbl);
  z->dbls() = {-0.0, 0.0, -0.0};
  auto zscan = Aggregate(AggOp::kMax, *z);
  ASSERT_TRUE(zscan.ok());
  ASSERT_TRUE(EnsureOrderIndex(*z).ok());
  auto zidx = Aggregate(AggOp::kMax, *z);
  ASSERT_TRUE(zidx.ok());
  EXPECT_EQ(std::signbit(zidx->d), std::signbit(zscan->d));
}

TEST(AggrTest, IndexBackedMinMaxAllNullAndString) {
  auto nulls = IntBat({kIntNil, kIntNil});
  ASSERT_TRUE(EnsureOrderIndex(*nulls).ok());
  auto mn = Aggregate(AggOp::kMin, *nulls);
  ASSERT_TRUE(mn.ok());
  EXPECT_TRUE(mn->is_null);

  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("pear")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Null(PhysType::kStr)).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("apple")).ok());
  ASSERT_TRUE(EnsureOrderIndex(*s).ok());
  testsupport::TestProbe().Rebase();
  auto smn = Aggregate(AggOp::kMin, *s);
  auto smx = Aggregate(AggOp::kMax, *s);
  ASSERT_TRUE(smn.ok());
  ASSERT_TRUE(smx.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().minmax_index, 2u);
  EXPECT_EQ(smn->s, "apple");
  EXPECT_EQ(smx->s, "pear");
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
