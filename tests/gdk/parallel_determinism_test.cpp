// Determinism suite for the morsel-parallel kernels: every parallelized
// kernel must produce bit-identical BATs at 1 thread and at 8 threads.
// Inputs are sized to span several morsels (kMorselRows = 64K rows), so the
// parallel path is genuinely exercised.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/array/tiling.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {
namespace {

using array::ArrayDesc;
using array::AttrDesc;
using array::DimDesc;
using array::DimRange;
using array::TileSpec;

constexpr size_t kRows = 3 * kMorselRows + 1234;  // several morsels

// Bytewise equality of the tail vectors (NaN-safe, unlike operator==).
template <typename T>
bool VecBytesEqual(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

::testing::AssertionResult BatsBitIdentical(const BAT& a, const BAT& b) {
  if (a.type() != b.type()) {
    return ::testing::AssertionFailure()
           << "type mismatch: " << PhysTypeName(a.type()) << " vs "
           << PhysTypeName(b.type());
  }
  if (a.Count() != b.Count()) {
    return ::testing::AssertionFailure()
           << "count mismatch: " << a.Count() << " vs " << b.Count();
  }
  bool eq = false;
  switch (a.type()) {
    case PhysType::kBit:
      eq = VecBytesEqual(a.bits(), b.bits());
      break;
    case PhysType::kInt:
      eq = VecBytesEqual(a.ints(), b.ints());
      break;
    case PhysType::kLng:
      eq = VecBytesEqual(a.lngs(), b.lngs());
      break;
    case PhysType::kDbl:
      eq = VecBytesEqual(a.dbls(), b.dbls());
      break;
    case PhysType::kOid:
      eq = VecBytesEqual(a.oids(), b.oids());
      break;
    case PhysType::kStr: {
      // Offsets are heap-relative; compare decoded strings row by row.
      eq = true;
      for (size_t i = 0; i < a.Count() && eq; ++i) {
        if (a.IsNullAt(i) != b.IsNullAt(i)) eq = false;
        else if (!a.IsNullAt(i) && a.GetStr(i) != b.GetStr(i)) eq = false;
      }
      break;
    }
  }
  if (!eq) return ::testing::AssertionFailure() << "tail bytes differ";
  return ::testing::AssertionSuccess();
}

// Run `fn` at 1 thread and at 8 threads and assert bit-identical results.
template <typename Fn>
void ExpectDeterministic(Fn fn) {
  auto& pool = ThreadPool::Get();
  pool.SetThreadCount(1);
  BATPtr seq = fn();
  ASSERT_NE(seq, nullptr);
  pool.SetThreadCount(8);
  BATPtr par = fn();
  pool.SetThreadCount(1);
  ASSERT_NE(par, nullptr);
  EXPECT_TRUE(BatsBitIdentical(*seq, *par));
}

BATPtr IntColumn(size_t n, uint64_t seed, bool with_nulls) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kInt);
  b->ints().resize(n);
  for (auto& v : b->ints()) {
    if (with_nulls && rng.Below(37) == 0) {
      v = kIntNil;
    } else {
      v = static_cast<int32_t>(rng.Below(1000)) - 500;
    }
  }
  return b;
}

BATPtr DblColumn(size_t n, uint64_t seed, bool with_nulls) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kDbl);
  b->dbls().resize(n);
  for (auto& v : b->dbls()) {
    if (with_nulls && rng.Below(37) == 0) {
      v = DblNil();
    } else {
      v = static_cast<double>(rng.Below(1000000)) / 997.0 - 300.0;
    }
  }
  return b;
}

BATPtr StrColumn(size_t n, uint64_t seed, uint64_t domain = 200) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kStr);
  b->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = rng.Below(domain);
    Status st = k == 0 ? b->Append(ScalarValue::Null(PhysType::kStr))
                       : b->Append(ScalarValue::Str(
                             "key" + std::to_string(k)));
    EXPECT_TRUE(st.ok());
  }
  return b;
}

TEST(ParallelDeterminism, BoolSelect) {
  Rng rng(1);
  auto bits = BAT::Make(PhysType::kBit);
  bits->bits().resize(kRows);
  for (auto& v : bits->bits()) {
    uint64_t k = rng.Below(5);
    v = k == 0 ? kBitNil : static_cast<uint8_t>(k % 2);
  }
  ExpectDeterministic([&] { return BoolSelect(*bits, nullptr).take(); });
}

TEST(ParallelDeterminism, ThetaSelectIntThroughCandidates) {
  auto b = IntColumn(kRows, 2, true);
  auto cands = BAT::MakeDense(1000, kRows);
  ExpectDeterministic([&] {
    return ThetaSelect(*b, cands.get(), CmpOp::kGt, ScalarValue::Int(120))
        .take();
  });
}

TEST(ParallelDeterminism, ThetaSelectStr) {
  auto b = StrColumn(kRows, 3);
  ExpectDeterministic([&] {
    return ThetaSelect(*b, nullptr, CmpOp::kGe, ScalarValue::Str("key50"))
        .take();
  });
}

TEST(ParallelDeterminism, RangeSelect) {
  auto b = DblColumn(kRows, 4, true);
  ExpectDeterministic([&] {
    return RangeSelect(*b, nullptr, ScalarValue::Dbl(-10.0),
                       ScalarValue::Dbl(200.0), true, false)
        .take();
  });
}

TEST(ParallelDeterminism, NullSelect) {
  auto b = IntColumn(kRows, 5, true);
  ExpectDeterministic([&] { return NullSelect(*b, nullptr, true).take(); });
}

TEST(ParallelDeterminism, CalcBinaryDblAdd) {
  auto l = DblColumn(kRows, 6, true);
  auto r = DblColumn(kRows, 7, true);
  ExpectDeterministic([&] {
    return CalcBinary(BinOp::kAdd, l.get(), nullptr, r.get(), nullptr).take();
  });
}

TEST(ParallelDeterminism, CalcBinaryIntCmpScalar) {
  auto l = IntColumn(kRows, 8, true);
  ScalarValue s = ScalarValue::Int(3);
  ExpectDeterministic([&] {
    return CalcBinary(BinOp::kLt, l.get(), nullptr, nullptr, &s).take();
  });
}

TEST(ParallelDeterminism, CalcBinaryBoolAnd) {
  Rng rng(9);
  auto mk = [&] {
    auto b = BAT::Make(PhysType::kBit);
    b->bits().resize(kRows);
    for (auto& v : b->bits()) {
      uint64_t k = rng.Below(5);
      v = k == 0 ? kBitNil : static_cast<uint8_t>(k % 2);
    }
    return b;
  };
  auto l = mk();
  auto r = mk();
  ExpectDeterministic([&] {
    return CalcBinary(BinOp::kAnd, l.get(), nullptr, r.get(), nullptr).take();
  });
}

TEST(ParallelDeterminism, CalcUnaryNegAndIsNull) {
  auto b = DblColumn(kRows, 10, true);
  ExpectDeterministic([&] { return CalcUnary(UnOp::kNeg, *b).take(); });
  ExpectDeterministic([&] { return CalcUnary(UnOp::kIsNull, *b).take(); });
}

TEST(ParallelDeterminism, CastBatBothWays) {
  auto i = IntColumn(kRows, 11, true);
  ExpectDeterministic([&] { return CastBat(*i, PhysType::kDbl).take(); });
  auto d = DblColumn(kRows, 12, true);
  ExpectDeterministic([&] { return CastBat(*d, PhysType::kInt).take(); });
}

TEST(ParallelDeterminism, IfThenElse) {
  Rng rng(13);
  auto cond = BAT::Make(PhysType::kBit);
  cond->bits().resize(kRows);
  for (auto& v : cond->bits()) {
    uint64_t k = rng.Below(5);
    v = k == 0 ? kBitNil : static_cast<uint8_t>(k % 2);
  }
  auto t = IntColumn(kRows, 14, false);
  auto e = DblColumn(kRows, 15, false);
  ExpectDeterministic([&] {
    return IfThenElse(*cond, t.get(), nullptr, e.get(), nullptr).take();
  });
}

TEST(ParallelDeterminism, Project) {
  Rng rng(16);
  auto src = DblColumn(kRows, 17, true);
  auto pos = BAT::Make(PhysType::kOid);
  pos->oids().resize(kRows);
  for (auto& p : pos->oids()) {
    p = rng.Below(50) == 0 ? kOidNil : rng.Below(kRows);
  }
  ExpectDeterministic([&] { return Project(*src, *pos).take(); });
}

TEST(ParallelDeterminism, ProjectStr) {
  Rng rng(18);
  auto src = StrColumn(kMorselRows / 16, 19);
  auto pos = BAT::Make(PhysType::kOid);
  pos->oids().resize(kRows);
  for (auto& p : pos->oids()) {
    p = rng.Below(50) == 0 ? kOidNil : rng.Below(src->Count());
  }
  ExpectDeterministic([&] { return Project(*src, *pos).take(); });
}

template <typename Fn>
void ExpectJoinDeterministic(Fn fn) {
  auto& pool = ThreadPool::Get();
  pool.SetThreadCount(1);
  auto seq = fn();
  pool.SetThreadCount(8);
  auto par = fn();
  pool.SetThreadCount(1);
  EXPECT_TRUE(BatsBitIdentical(*seq.left, *par.left));
  EXPECT_TRUE(BatsBitIdentical(*seq.right, *par.right));
}

TEST(ParallelDeterminism, HashJoinInt) {
  // Skewed keys so some probe rows have multi-match chains, but a domain
  // wide enough to keep the output cardinality around a million pairs.
  Rng rng(20);
  auto mk = [&](size_t n) {
    auto b = BAT::Make(PhysType::kInt);
    b->ints().resize(n);
    for (auto& v : b->ints()) {
      v = rng.Below(43) == 0 ? kIntNil
                             : static_cast<int32_t>(rng.Below(20000));
    }
    return b;
  };
  auto l = mk(kRows / 2);
  auto r = mk(kRows);
  ExpectJoinDeterministic([&] { return HashJoin(*l, *r).take(); });
}

TEST(ParallelDeterminism, HashJoinDbl) {
  auto l = DblColumn(8192, 21, true);
  auto r = DblColumn(2 * kMorselRows + 999, 22, true);
  // Quantize so equal keys (including +/-0.0) actually collide.
  for (auto* b : {l.get(), r.get()}) {
    for (auto& v : b->dbls()) {
      if (!IsDblNil(v)) v = std::floor(v);
    }
  }
  l->dbls()[0] = 0.0;
  r->dbls()[0] = -0.0;  // must match 0.0 on the other side
  ExpectJoinDeterministic([&] { return HashJoin(*l, *r).take(); });
}

TEST(ParallelDeterminism, HashJoinStrAcrossHeaps) {
  auto l = StrColumn(8192, 23, 2000);
  auto r = StrColumn(kRows, 24, 2000);  // different heap
  ExpectJoinDeterministic([&] { return HashJoin(*l, *r).take(); });
}

TEST(ParallelDeterminism, HashJoinMulti) {
  auto lx = IntColumn(kRows / 2, 25, true);
  auto ly = IntColumn(kRows / 2, 26, true);
  auto rx = IntColumn(kRows, 27, true);
  auto ry = IntColumn(kRows, 28, true);
  // Narrow the domain so multi-key matches actually occur.
  for (auto* b : {lx.get(), ly.get(), rx.get(), ry.get()}) {
    for (auto& v : b->ints()) {
      if (v != kIntNil) v = ((v % 200) + 200) % 200;
    }
  }
  ExpectJoinDeterministic([&] {
    return HashJoinMulti({lx.get(), ly.get()}, {rx.get(), ry.get()}).take();
  });
}

TEST(ParallelDeterminism, GroupAndRefinement) {
  auto a = IntColumn(kRows, 29, true);
  auto b = IntColumn(kRows, 30, true);
  for (auto* c : {a.get(), b.get()}) {
    for (auto& v : c->ints()) {
      if (v != kIntNil) v = v % 64;
    }
  }
  auto& pool = ThreadPool::Get();
  pool.SetThreadCount(1);
  auto g1s = Group(*a, nullptr, 0).take();
  auto g2s = Group(*b, g1s.groups.get(), g1s.ngroups).take();
  pool.SetThreadCount(8);
  auto g1p = Group(*a, nullptr, 0).take();
  auto g2p = Group(*b, g1p.groups.get(), g1p.ngroups).take();
  pool.SetThreadCount(1);
  EXPECT_EQ(g1s.ngroups, g1p.ngroups);
  EXPECT_TRUE(BatsBitIdentical(*g1s.groups, *g1p.groups));
  EXPECT_TRUE(BatsBitIdentical(*g1s.extents, *g1p.extents));
  EXPECT_EQ(g2s.ngroups, g2p.ngroups);
  EXPECT_TRUE(BatsBitIdentical(*g2s.groups, *g2p.groups));
  EXPECT_TRUE(BatsBitIdentical(*g2s.extents, *g2p.extents));
}

TEST(ParallelDeterminism, GroupedAggregates) {
  auto vals = DblColumn(kRows, 31, true);
  Rng rng(32);
  size_t ngroups = 97;
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids().resize(kRows);
  for (auto& g : groups->oids()) g = rng.Below(ngroups);
  for (AggOp op : {AggOp::kCountStar, AggOp::kCount, AggOp::kSum, AggOp::kAvg,
                   AggOp::kMin, AggOp::kMax}) {
    ExpectDeterministic([&] {
      return GroupedAggregate(op, vals.get(), *groups, ngroups).take();
    });
  }
}

TEST(ParallelDeterminism, GroupedAggregateIntSum) {
  auto vals = IntColumn(kRows, 33, true);
  auto groups = BAT::Make(PhysType::kOid);
  groups->oids().assign(kRows, 0);
  ExpectDeterministic([&] {
    return GroupedAggregate(AggOp::kSum, vals.get(), *groups, 1).take();
  });
}

// --------------------------------------------------------------------------
// Parallel sort / order-index / partitioned group
// --------------------------------------------------------------------------

TEST(ParallelDeterminism, OrderIndexIntDuplicateHeavy) {
  // Narrow domain: long runs of ties exercise the stable tie-break through
  // the merge tree. Invalidate the cache each run so the 8-thread pass
  // really re-sorts instead of reusing the 1-thread build.
  auto b = IntColumn(kRows, 40, true);
  for (auto& v : b->ints()) {
    if (v != kIntNil) v = v % 7;
  }
  ExpectDeterministic([&] {
    b->InvalidateOrderIndex();
    return OrderIndex({b.get()}, {false}).take();
  });
}

TEST(ParallelDeterminism, OrderIndexIntDesc) {
  auto b = IntColumn(kRows, 41, true);
  ExpectDeterministic([&] { return OrderIndex({b.get()}, {true}).take(); });
}

TEST(ParallelDeterminism, OrderIndexDblWithNulls) {
  auto b = DblColumn(kRows, 42, true);
  b->dbls()[17] = 0.0;
  b->dbls()[kRows - 3] = -0.0;  // must tie with 0.0, stability decides
  ExpectDeterministic([&] {
    b->InvalidateOrderIndex();
    return OrderIndex({b.get()}, {false}).take();
  });
  ExpectDeterministic([&] { return OrderIndex({b.get()}, {true}).take(); });
}

TEST(ParallelDeterminism, OrderIndexStr) {
  auto b = StrColumn(kRows, 43);  // domain 200: duplicate-heavy, has nils
  ExpectDeterministic([&] {
    b->InvalidateOrderIndex();
    return OrderIndex({b.get()}, {false}).take();
  });
}

TEST(ParallelDeterminism, OrderIndexMultiKey) {
  auto k1 = IntColumn(kRows, 44, true);
  for (auto& v : k1->ints()) {
    if (v != kIntNil) v = v % 16;
  }
  auto k2 = DblColumn(kRows, 45, true);
  ExpectDeterministic([&] {
    return OrderIndex({k1.get(), k2.get()}, {false, true}).take();
  });
}

TEST(ParallelDeterminism, SortBatMaterialized) {
  auto b = IntColumn(kRows, 46, true);
  ExpectDeterministic([&] {
    b->InvalidateOrderIndex();
    return SortBat(*b, /*desc=*/false).take();
  });
  auto s = StrColumn(kRows, 47);
  ExpectDeterministic([&] {
    s->InvalidateOrderIndex();
    return SortBat(*s, /*desc=*/false).take();
  });
}

TEST(ParallelDeterminism, OrderIndexThreadSweep128) {
  // The acceptance contract verbatim: bit-identical at 1, 2 and 8 threads.
  auto b = IntColumn(kRows, 50, true);
  auto& pool = ThreadPool::Get();
  pool.SetThreadCount(1);
  b->InvalidateOrderIndex();
  auto t1 = OrderIndex({b.get()}, {false}).take();
  pool.SetThreadCount(2);
  b->InvalidateOrderIndex();
  auto t2 = OrderIndex({b.get()}, {false}).take();
  pool.SetThreadCount(8);
  b->InvalidateOrderIndex();
  auto t8 = OrderIndex({b.get()}, {false}).take();
  pool.SetThreadCount(1);
  EXPECT_TRUE(BatsBitIdentical(*t1, *t2));
  EXPECT_TRUE(BatsBitIdentical(*t1, *t8));
}

TEST(ParallelDeterminism, FirstNEqualsSortThenSliceAtAnyThreadCount) {
  // The ISSUE acceptance contract verbatim: FirstN must be bit-identical to
  // the full sort followed by a slice, at 1, 2 and 8 threads, on a
  // multi-morsel input with duplicates and NULLs.
  auto b = IntColumn(kRows, 60, true);
  for (auto& v : b->ints()) {
    if (v != kIntNil) v = v % 97;  // duplicate-heavy: ties cross morsels
  }
  auto& pool = ThreadPool::Get();
  for (size_t k : {size_t{1}, size_t{100}, size_t{4096}}) {
    b->InvalidateOrderIndex();
    pool.SetThreadCount(1);
    auto full = OrderIndex({b.get()}, {false}).take();
    auto expect = full->Slice(0, k);
    for (int threads : {1, 2, 8}) {
      pool.SetThreadCount(threads);
      b->InvalidateOrderIndex();  // force the bounded-heap path
      auto topk = FirstN({b.get()}, {false}, k).take();
      EXPECT_TRUE(BatsBitIdentical(*expect, *topk))
          << "k=" << k << " threads=" << threads;
    }
  }
  // Descending keys go through the generic comparator.
  pool.SetThreadCount(1);
  auto full_desc = OrderIndex({b.get()}, {true}).take();
  auto expect_desc = full_desc->Slice(0, 100);
  for (int threads : {1, 2, 8}) {
    pool.SetThreadCount(threads);
    auto topk = FirstN({b.get()}, {true}, 100).take();
    EXPECT_TRUE(BatsBitIdentical(*expect_desc, *topk)) << threads;
  }
  pool.SetThreadCount(1);
}

TEST(ParallelDeterminism, PartitionedGroupDuplicateHeavy) {
  // Three distinct values plus NULL: every morsel dictionary contains every
  // group, so the merge pass dedups heavily.
  auto b = IntColumn(kRows, 48, true);
  for (auto& v : b->ints()) {
    if (v != kIntNil) v = ((v % 3) + 3) % 3;
  }
  auto& pool = ThreadPool::Get();
  pool.SetThreadCount(1);
  auto seq = Group(*b, nullptr, 0).take();
  pool.SetThreadCount(8);
  auto par = Group(*b, nullptr, 0).take();
  pool.SetThreadCount(1);
  EXPECT_EQ(seq.ngroups, par.ngroups);
  EXPECT_TRUE(BatsBitIdentical(*seq.groups, *par.groups));
  EXPECT_TRUE(BatsBitIdentical(*seq.extents, *par.extents));
}

TEST(ParallelDeterminism, PartitionedGroupManyGroups) {
  // More groups than rows per morsel: most keys are unique to few morsels.
  auto b = IntColumn(kRows, 49, true);
  for (auto& v : b->ints()) {
    if (v != kIntNil) v = ((v * 131) % 100000 + 100000) % 100000;
  }
  auto& pool = ThreadPool::Get();
  pool.SetThreadCount(1);
  auto seq = Group(*b, nullptr, 0).take();
  pool.SetThreadCount(8);
  auto par = Group(*b, nullptr, 0).take();
  pool.SetThreadCount(1);
  EXPECT_EQ(seq.ngroups, par.ngroups);
  EXPECT_TRUE(BatsBitIdentical(*seq.groups, *par.groups));
  EXPECT_TRUE(BatsBitIdentical(*seq.extents, *par.extents));
}

ArrayDesc Desc2D(size_t nx, size_t ny) {
  return ArrayDesc(
      {DimDesc{"x", DimRange(0, 1, static_cast<int64_t>(nx)), false},
       DimDesc{"y", DimRange(0, 1, static_cast<int64_t>(ny)), false}},
      {AttrDesc{"v", PhysType::kInt, ScalarValue::Int(0)}});
}

TEST(ParallelDeterminism, TileAggregates) {
  constexpr size_t kSide = 512;  // 262144 cells: several anchor morsels
  ArrayDesc desc = Desc2D(kSide, kSide);
  auto vals = DblColumn(kSide * kSide, 34, true);
  auto spec = TileSpec::FromRanges({{-1, 2}, {-1, 2}});
  ASSERT_TRUE(spec.ok());
  for (AggOp op : {AggOp::kCount, AggOp::kSum, AggOp::kAvg, AggOp::kMin,
                   AggOp::kMax}) {
    ExpectDeterministic([&] {
      return array::NaiveTileAggregate(desc, *vals, *spec, op).take();
    });
    ExpectDeterministic([&] {
      return array::SlidingTileAggregate(desc, *vals, *spec, op).take();
    });
  }
}

// Naive and sliding engines agree on a rectangular tile when run under the
// pool. Integer values keep every aggregate exact, so the comparison is
// bit-identical (avg is an exact ratio of exact sums in both engines).
TEST(ParallelDeterminism, NaiveVsSlidingUnderPool) {
  constexpr size_t kSide = 384;
  ArrayDesc desc = Desc2D(kSide, kSide);
  Rng rng(35);
  auto vals = BAT::Make(PhysType::kInt);
  vals->ints().resize(kSide * kSide);
  for (auto& v : vals->ints()) {
    v = rng.Below(29) == 0 ? kIntNil : static_cast<int32_t>(rng.Below(256));
  }
  auto spec = TileSpec::FromRanges({{0, 3}, {0, 3}});
  ASSERT_TRUE(spec.ok());
  ThreadPool::Get().SetThreadCount(8);
  for (AggOp op : {AggOp::kCount, AggOp::kSum, AggOp::kAvg, AggOp::kMin,
                   AggOp::kMax}) {
    auto naive = array::NaiveTileAggregate(desc, *vals, *spec, op);
    auto sliding = array::SlidingTileAggregate(desc, *vals, *spec, op);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(sliding.ok());
    EXPECT_TRUE(BatsBitIdentical(**naive, **sliding));
  }
  ThreadPool::Get().SetThreadCount(1);
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
