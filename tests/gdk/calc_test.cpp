#include <gtest/gtest.h>

#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {
namespace {

BATPtr IntBat(std::initializer_list<int32_t> vals) {
  auto b = BAT::Make(PhysType::kInt);
  for (int32_t v : vals) b->ints().push_back(v);
  return b;
}

TEST(CalcTest, AddBatBat) {
  auto a = IntBat({1, 2, 3});
  auto b = IntBat({10, 20, 30});
  auto r = CalcBinary(BinOp::kAdd, a.get(), nullptr, b.get(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ints(), (std::vector<int32_t>{11, 22, 33}));
}

TEST(CalcTest, AddBatScalarWithNullPropagation) {
  auto a = IntBat({1, kIntNil, 3});
  ScalarValue ten = ScalarValue::Int(10);
  auto r = CalcBinary(BinOp::kAdd, a.get(), nullptr, nullptr, &ten);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ints()[0], 11);
  EXPECT_EQ((*r)->ints()[1], kIntNil);
  EXPECT_EQ((*r)->ints()[2], 13);
}

TEST(CalcTest, MixedTypesPromote) {
  auto a = IntBat({1, 2});
  ScalarValue half = ScalarValue::Dbl(0.5);
  auto r = CalcBinary(BinOp::kMul, a.get(), nullptr, nullptr, &half);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kDbl);
  EXPECT_DOUBLE_EQ((*r)->dbls()[1], 1.0);
}

TEST(CalcTest, IntegerDivisionTruncates) {
  auto a = IntBat({7, -7});
  ScalarValue two = ScalarValue::Int(2);
  auto r = CalcBinary(BinOp::kDiv, a.get(), nullptr, nullptr, &two);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ints()[0], 3);
  EXPECT_EQ((*r)->ints()[1], -3);
}

TEST(CalcTest, DivisionByZeroErrors) {
  auto a = IntBat({1});
  ScalarValue zero = ScalarValue::Int(0);
  EXPECT_FALSE(CalcBinary(BinOp::kDiv, a.get(), nullptr, nullptr, &zero).ok());
  EXPECT_FALSE(CalcBinary(BinOp::kMod, a.get(), nullptr, nullptr, &zero).ok());
}

TEST(CalcTest, ModMatchesPaperUsage) {
  auto a = IntBat({0, 1, 2, 3});
  ScalarValue two = ScalarValue::Int(2);
  auto r = CalcBinary(BinOp::kMod, a.get(), nullptr, nullptr, &two);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ints(), (std::vector<int32_t>{0, 1, 0, 1}));
}

TEST(CalcTest, ComparisonYieldsBitWithNil) {
  auto a = IntBat({1, kIntNil, 3});
  ScalarValue two = ScalarValue::Int(2);
  auto r = CalcBinary(BinOp::kLt, a.get(), nullptr, nullptr, &two);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kBit);
  EXPECT_EQ((*r)->bits()[0], 1);
  EXPECT_EQ((*r)->bits()[1], kBitNil);
  EXPECT_EQ((*r)->bits()[2], 0);
}

TEST(CalcTest, ThreeValuedAndOr) {
  auto t = BAT::Make(PhysType::kBit);
  t->bits() = {1, 0, kBitNil, 1, 0, kBitNil, 1, 0, kBitNil};
  auto u = BAT::Make(PhysType::kBit);
  u->bits() = {1, 1, 1, 0, 0, 0, kBitNil, kBitNil, kBitNil};

  auto a = CalcBinary(BinOp::kAnd, t.get(), nullptr, u.get(), nullptr);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->bits(),
            (std::vector<uint8_t>{1, 0, kBitNil, 0, 0, 0, kBitNil, 0, kBitNil}));

  auto o = CalcBinary(BinOp::kOr, t.get(), nullptr, u.get(), nullptr);
  ASSERT_TRUE(o.ok());
  EXPECT_EQ((*o)->bits(),
            (std::vector<uint8_t>{1, 1, 1, 1, 0, kBitNil, 1, kBitNil, kBitNil}));
}

TEST(CalcTest, NotAndIsNil) {
  auto t = BAT::Make(PhysType::kBit);
  t->bits() = {1, 0, kBitNil};
  auto n = CalcUnary(UnOp::kNot, *t);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ((*n)->bits(), (std::vector<uint8_t>{0, 1, kBitNil}));

  auto a = IntBat({5, kIntNil});
  auto isn = CalcUnary(UnOp::kIsNull, *a);
  ASSERT_TRUE(isn.ok());
  EXPECT_EQ((*isn)->bits(), (std::vector<uint8_t>{0, 1}));
}

TEST(CalcTest, NegAbs) {
  auto a = IntBat({-5, 5, kIntNil});
  auto n = CalcUnary(UnOp::kNeg, *a);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ((*n)->ints()[0], 5);
  EXPECT_EQ((*n)->ints()[2], kIntNil);
  auto ab = CalcUnary(UnOp::kAbs, *a);
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ((*ab)->ints()[0], 5);
  EXPECT_EQ((*ab)->ints()[1], 5);
}

TEST(CalcTest, IfThenElseNullCondSelectsElse) {
  auto c = BAT::Make(PhysType::kBit);
  c->bits() = {1, 0, kBitNil};
  ScalarValue yes = ScalarValue::Int(100);
  ScalarValue no = ScalarValue::Int(-100);
  auto r = IfThenElse(*c, nullptr, &yes, nullptr, &no);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ints(), (std::vector<int32_t>{100, -100, -100}));
}

TEST(CalcTest, IfThenElsePromotesArms) {
  auto c = BAT::Make(PhysType::kBit);
  c->bits() = {1, 0};
  ScalarValue i = ScalarValue::Int(1);
  ScalarValue d = ScalarValue::Dbl(0.5);
  auto r = IfThenElse(*c, nullptr, &i, nullptr, &d);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kDbl);
}

TEST(CalcTest, StringCompare) {
  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("apple")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("banana")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Null(PhysType::kStr)).ok());
  ScalarValue needle = ScalarValue::Str("banana");
  auto r = CalcBinary(BinOp::kEq, s.get(), nullptr, nullptr, &needle);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->bits()[0], 0);
  EXPECT_EQ((*r)->bits()[1], 1);
  EXPECT_EQ((*r)->bits()[2], kBitNil);
}

TEST(CalcTest, ScalarScalar) {
  auto r = CalcBinaryScalar(BinOp::kAdd, ScalarValue::Int(2),
                            ScalarValue::Int(40));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->i, 42);
  auto cmp = CalcBinaryScalar(BinOp::kGt, ScalarValue::Dbl(1.5),
                              ScalarValue::Int(1));
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->IsTrue());
}

TEST(CalcTest, CastBat) {
  auto a = IntBat({1, kIntNil, 3});
  auto d = CastBat(*a, PhysType::kDbl);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)->dbls()[0], 1.0);
  EXPECT_TRUE((*d)->IsNullAt(1));
  auto l = CastBat(*a, PhysType::kLng);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ((*l)->lngs()[2], 3);
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
