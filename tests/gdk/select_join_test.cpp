#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {
namespace {

BATPtr IntBat(std::initializer_list<int32_t> vals) {
  auto b = BAT::Make(PhysType::kInt);
  for (int32_t v : vals) b->ints().push_back(v);
  return b;
}

TEST(SelectTest, BoolSelect) {
  auto bits = BAT::Make(PhysType::kBit);
  bits->bits() = {1, 0, kBitNil, 1};
  auto r = BoolSelect(*bits, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->oids(), (std::vector<oid_t>{0, 3}));
}

TEST(SelectTest, BoolSelectThroughCandidates) {
  auto bits = BAT::Make(PhysType::kBit);
  bits->bits() = {1, 1};
  auto cands = BAT::Make(PhysType::kOid);
  cands->oids() = {4, 9};
  auto r = BoolSelect(*bits, cands.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->oids(), (std::vector<oid_t>{4, 9}));
}

TEST(SelectTest, ThetaSelectSkipsNulls) {
  auto b = IntBat({5, kIntNil, 7, 3});
  auto r = ThetaSelect(*b, nullptr, CmpOp::kGt, ScalarValue::Int(4));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->oids(), (std::vector<oid_t>{0, 2}));
}

TEST(SelectTest, ThetaSelectWithNullConstantMatchesNothing) {
  auto b = IntBat({5, 7});
  auto r = ThetaSelect(*b, nullptr, CmpOp::kEq,
                       ScalarValue::Null(PhysType::kInt));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Count(), 0u);
}

TEST(SelectTest, RangeSelect) {
  auto b = IntBat({1, 2, 3, 4, 5});
  auto r = RangeSelect(*b, nullptr, ScalarValue::Int(2), ScalarValue::Int(4),
                       true, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->oids(), (std::vector<oid_t>{1, 2}));
}

TEST(SelectTest, NullSelect) {
  auto b = IntBat({1, kIntNil, 3});
  auto nulls = NullSelect(*b, nullptr, true);
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ((*nulls)->oids(), (std::vector<oid_t>{1}));
  auto notnulls = NullSelect(*b, nullptr, false);
  ASSERT_TRUE(notnulls.ok());
  EXPECT_EQ((*notnulls)->oids(), (std::vector<oid_t>{0, 2}));
}

TEST(ProjectTest, GatherWithNilPositions) {
  auto b = IntBat({10, 20, 30});
  auto pos = BAT::Make(PhysType::kOid);
  pos->oids() = {2, kOidNil, 0};
  auto r = Project(*b, *pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ints()[0], 30);
  EXPECT_TRUE((*r)->IsNullAt(1));
  EXPECT_EQ((*r)->ints()[2], 10);
}

TEST(ProjectTest, OutOfRangePositionFails) {
  auto b = IntBat({10});
  auto pos = BAT::Make(PhysType::kOid);
  pos->oids() = {3};
  EXPECT_FALSE(Project(*b, *pos).ok());
}

TEST(ProjectTest, StringGatherKeepsHeap) {
  auto s = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(s->Append(ScalarValue::Str("a")).ok());
  ASSERT_TRUE(s->Append(ScalarValue::Str("b")).ok());
  auto pos = BAT::Make(PhysType::kOid);
  pos->oids() = {1, kOidNil};
  auto r = Project(*s, *pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetStr(0), "b");
  EXPECT_TRUE((*r)->IsNullAt(1));
}

TEST(JoinTest, HashJoinBasics) {
  auto l = IntBat({1, 2, 3, 2});
  auto r = IntBat({2, 4, 1});
  auto jr = HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  // Pairs: (0,2) 1=1; (1,0) and (3,0) 2=2.
  EXPECT_EQ(jr->left->Count(), 3u);
  std::multiset<std::pair<oid_t, oid_t>> got;
  for (size_t i = 0; i < jr->left->Count(); ++i) {
    got.insert({jr->left->oids()[i], jr->right->oids()[i]});
  }
  std::multiset<std::pair<oid_t, oid_t>> want{{0, 2}, {1, 0}, {3, 0}};
  EXPECT_EQ(got, want);
}

TEST(JoinTest, NullsNeverMatch) {
  auto l = IntBat({kIntNil, 1});
  auto r = IntBat({kIntNil, 1});
  auto jr = HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(jr->left->Count(), 1u);
}

TEST(JoinTest, MixedNumericTypesPromote) {
  auto l = IntBat({1, 2});
  auto r = BAT::Make(PhysType::kLng);
  r->lngs() = {2, 3};
  auto jr = HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  ASSERT_EQ(jr->left->Count(), 1u);
  EXPECT_EQ(jr->left->oids()[0], 1u);
  EXPECT_EQ(jr->right->oids()[0], 0u);
}

TEST(JoinTest, StringJoinByContent) {
  auto l = BAT::Make(PhysType::kStr);
  ASSERT_TRUE(l->Append(ScalarValue::Str("x")).ok());
  ASSERT_TRUE(l->Append(ScalarValue::Str("y")).ok());
  auto r = BAT::Make(PhysType::kStr);  // different heap
  ASSERT_TRUE(r->Append(ScalarValue::Str("y")).ok());
  auto jr = HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  ASSERT_EQ(jr->left->Count(), 1u);
  EXPECT_EQ(jr->left->oids()[0], 1u);
}

TEST(JoinTest, MultiKeyJoin) {
  auto lx = IntBat({1, 1, 2});
  auto ly = IntBat({1, 2, 1});
  auto rx = IntBat({1, 2});
  auto ry = IntBat({2, 1});
  auto jr = HashJoinMulti({lx.get(), ly.get()}, {rx.get(), ry.get()});
  ASSERT_TRUE(jr.ok());
  ASSERT_EQ(jr->left->Count(), 2u);
  std::multiset<std::pair<oid_t, oid_t>> got;
  for (size_t i = 0; i < jr->left->Count(); ++i) {
    got.insert({jr->left->oids()[i], jr->right->oids()[i]});
  }
  std::multiset<std::pair<oid_t, oid_t>> want{{1, 0}, {2, 1}};
  EXPECT_EQ(got, want);
}

TEST(JoinTest, MultiKeyAgreesWithNestedLoop) {
  Rng rng(77);
  auto lx = BAT::Make(PhysType::kInt);
  auto ly = BAT::Make(PhysType::kInt);
  auto rx = BAT::Make(PhysType::kInt);
  auto ry = BAT::Make(PhysType::kInt);
  for (int i = 0; i < 200; ++i) {
    lx->ints().push_back(static_cast<int32_t>(rng.Below(10)));
    ly->ints().push_back(static_cast<int32_t>(rng.Below(10)));
    rx->ints().push_back(static_cast<int32_t>(rng.Below(10)));
    ry->ints().push_back(static_cast<int32_t>(rng.Below(10)));
  }
  auto jr = HashJoinMulti({lx.get(), ly.get()}, {rx.get(), ry.get()});
  ASSERT_TRUE(jr.ok());
  size_t expected = 0;
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = 0; j < 200; ++j) {
      if (lx->ints()[i] == rx->ints()[j] && ly->ints()[i] == ry->ints()[j]) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(jr->left->Count(), expected);
}

TEST(JoinTest, CrossJoinShape) {
  JoinResult jr = CrossJoin(2, 3);
  EXPECT_EQ(jr.left->Count(), 6u);
  EXPECT_EQ(jr.left->oids()[0], 0u);
  EXPECT_EQ(jr.right->oids()[5], 2u);
}

TEST(SortTest, OrderIndexNullsFirstAndStable) {
  auto a = IntBat({3, kIntNil, 1, 3});
  auto idx = OrderIndex({a.get()}, {false});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->oids(), (std::vector<oid_t>{1, 2, 0, 3}));
  auto desc = OrderIndex({a.get()}, {true});
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ((*desc)->oids(), (std::vector<oid_t>{0, 3, 2, 1}));
}

TEST(SortTest, MultiKeyRefinement) {
  auto a = IntBat({1, 1, 0, 0});
  auto b = IntBat({5, 4, 9, 8});
  auto idx = OrderIndex({a.get(), b.get()}, {false, false});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->oids(), (std::vector<oid_t>{3, 2, 1, 0}));
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
