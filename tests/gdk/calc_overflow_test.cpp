// Integer overflow semantics of the batcalc and aggregation kernels
// (docs/execution.md): +, -, *, unary negation and ABS wrap mod 2^N via
// unsigned arithmetic; a wrapped value equal to the nil sentinel reads back
// as NULL. INT64_MIN / -1 and INT64_MIN % -1 — the one case the hardware
// traps on (SIGFPE) — are shielded twice: INT64_MIN *is* the nil sentinel,
// so a slot holding it is NULL and short-circuits before the divide, and
// the kernel guards the quotient defensively anyway. Wrapping keeps
// integer SUM associative, so every thread count produces bit-identical
// results; the multi-threaded cases here run BATs larger than one morsel
// (kMorselRows = 65536) to prove it.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/engine/database.h"
#include "src/gdk/kernels.h"

namespace sciql {
namespace gdk {
namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

BATPtr LngBat(std::initializer_list<int64_t> vals) {
  auto b = BAT::Make(PhysType::kLng);
  for (int64_t v : vals) b->lngs().push_back(v);
  return b;
}

// A BAT long enough to span several morsels (kMorselRows = 65536), with the
// poison value planted both in the first morsel and in a later one.
BATPtr BigLngBat(int64_t poison, int64_t filler, size_t n = 200000) {
  auto b = BAT::Make(PhysType::kLng);
  b->lngs().assign(n, filler);
  b->lngs()[3] = poison;
  b->lngs()[n - 7] = poison;
  return b;
}

class ThreadSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    saved_ = engine::Database::ExecutionThreads();
    engine::Database::SetExecutionThreads(GetParam());
  }
  void TearDown() override { engine::Database::SetExecutionThreads(saved_); }

 private:
  int saved_ = 1;
};

TEST_P(ThreadSweep, Int64MinDivMinusOneIsNilShielded) {
  // kMin is the nil sentinel: the poison rows are NULL inputs, so the
  // trapping quotient never runs — no SIGFPE, NULL out, at any thread
  // count, with the poison planted in different morsels.
  auto a = BigLngBat(kMin, 10);
  ScalarValue neg1 = ScalarValue::Lng(-1);
  auto r = CalcBinary(BinOp::kDiv, a.get(), nullptr, nullptr, &neg1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)->GetScalar(3).is_null);
  EXPECT_TRUE((*r)->GetScalar((*r)->Count() - 7).is_null);
  EXPECT_EQ((*r)->lngs()[0], -10);
}

TEST_P(ThreadSweep, Int64MinModMinusOneIsNilShielded) {
  auto a = BigLngBat(kMin, 10);
  ScalarValue neg1 = ScalarValue::Lng(-1);
  auto r = CalcBinary(BinOp::kMod, a.get(), nullptr, nullptr, &neg1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)->GetScalar(3).is_null);
  EXPECT_TRUE((*r)->GetScalar((*r)->Count() - 7).is_null);
  EXPECT_EQ((*r)->lngs()[0], 0);
}

TEST_P(ThreadSweep, DivModByMinusOneWithoutMinStillWorks) {
  auto a = LngBat({7, -7, kMax});
  ScalarValue neg1 = ScalarValue::Lng(-1);
  auto d = CalcBinary(BinOp::kDiv, a.get(), nullptr, nullptr, &neg1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->lngs(), (std::vector<int64_t>{-7, 7, -kMax}));
  auto m = CalcBinary(BinOp::kMod, a.get(), nullptr, nullptr, &neg1);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->lngs(), (std::vector<int64_t>{0, 0, 0}));
}

TEST_P(ThreadSweep, AddSubMulWrap) {
  // kMin itself is nil, so the most negative *value* is kMin + 1.
  auto a = LngBat({kMax, kMin + 1, 1});
  ScalarValue one = ScalarValue::Lng(1);
  auto add = CalcBinary(BinOp::kAdd, a.get(), nullptr, nullptr, &one);
  ASSERT_TRUE(add.ok());
  // kMax + 1 wraps onto the nil sentinel (kMin): reads back as NULL.
  EXPECT_EQ((*add)->lngs(), (std::vector<int64_t>{kMin, kMin + 2, 2}));
  EXPECT_TRUE((*add)->GetScalar(0).is_null);

  ScalarValue two = ScalarValue::Lng(2);
  auto mul = CalcBinary(BinOp::kMul, a.get(), nullptr, nullptr, &two);
  ASSERT_TRUE(mul.ok());
  // kMax * 2 == -2 and (kMin + 1) * 2 == 2, both mod 2^64.
  EXPECT_EQ((*mul)->lngs(), (std::vector<int64_t>{-2, 2, 2}));

  auto b = LngBat({kMin + 1, 0, 5});
  auto sub = CalcBinary(BinOp::kSub, b.get(), nullptr, nullptr, &one);
  ASSERT_TRUE(sub.ok());
  // (kMin + 1) - 1 lands exactly on the sentinel: NULL.
  EXPECT_EQ((*sub)->lngs(), (std::vector<int64_t>{kMin, -1, 4}));
  EXPECT_TRUE((*sub)->GetScalar(0).is_null);
}

TEST_P(ThreadSweep, NegAndAbsWrapWithoutTrapping) {
  auto a = LngBat({kMax, kMin + 1, -5, kMin});
  auto neg = CalcUnary(UnOp::kNeg, *a);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ((*neg)->lngs()[0], kMin + 1);  // -kMax
  EXPECT_EQ((*neg)->lngs()[1], kMax);
  EXPECT_EQ((*neg)->lngs()[2], 5);
  // The kMin slot is the nil sentinel: NULL in, NULL out — negation never
  // has to compute the trapping -INT64_MIN.
  EXPECT_TRUE((*neg)->GetScalar(3).is_null);
  auto abs = CalcUnary(UnOp::kAbs, *a);
  ASSERT_TRUE(abs.ok());
  EXPECT_EQ((*abs)->lngs()[0], kMax);
  EXPECT_EQ((*abs)->lngs()[1], kMax);
  EXPECT_EQ((*abs)->lngs()[2], 5);
  EXPECT_TRUE((*abs)->GetScalar(3).is_null);
}

TEST_P(ThreadSweep, SumWrapsAndIsThreadCountInvariant) {
  // kMax plus ~1.5M of filler overflows int64; the sum wraps mod 2^64,
  // which is associative, so the morsel-parallel reduction is exact and
  // bit-identical at any thread count. kMin is the nil sentinel: that row
  // is NULL and must be skipped, not summed.
  auto b = BAT::Make(PhysType::kLng);
  size_t n = 150000;
  b->lngs().assign(n, 10);
  b->lngs()[1] = kMax;
  b->lngs()[n - 2] = -9;
  b->lngs()[n - 1] = kMin;  // nil: excluded from the sum
  uint64_t expect = 0;
  for (int64_t v : b->lngs()) {
    if (v != kMin) expect += static_cast<uint64_t>(v);
  }
  auto r = Aggregate(AggOp::kSum, *b);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->is_null);
  EXPECT_EQ(r->i, static_cast<int64_t>(expect));
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 8));

TEST(CalcOverflowSql, DivByMinusOneOnInt64MinYieldsNull) {
  engine::Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (a BIGINT)").ok());
  ASSERT_TRUE(
      db.Run("INSERT INTO t VALUES (-9223372036854775808), (7)").ok());
  // The INT64_MIN literal round-trips through the lexer, then stores as
  // the nil sentinel: its row is NULL, so the trapping quotient never runs.
  auto div = db.Query("SELECT a / -1 AS c0 FROM t");
  ASSERT_TRUE(div.ok()) << div.status().ToString();
  ASSERT_EQ(div->NumRows(), 2u);
  EXPECT_TRUE(div->Value(0, 0).is_null);
  EXPECT_EQ(div->Value(1, 0).i, -7);
  auto mod = db.Query("SELECT a MOD -1 AS c0 FROM t");
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  EXPECT_TRUE(mod->Value(0, 0).is_null);
  EXPECT_EQ(mod->Value(1, 0).i, 0);
}

TEST(CalcOverflowSql, WrapLandsOnNullSentinel) {
  engine::Database db;
  ASSERT_TRUE(db.Run("CREATE TABLE t (a BIGINT)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (9223372036854775807)").ok());
  auto rs = db.Query("SELECT a + 1 AS c0, -(a + 1) AS c1 FROM t");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_TRUE(rs->Value(0, 0).is_null);  // kMax + 1 -> nil sentinel
  EXPECT_TRUE(rs->Value(0, 1).is_null);  // NULL propagates
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
