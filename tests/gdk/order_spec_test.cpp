// The keyed (multi-key + descending) order-index cache: spec-aware
// EnsureOrderIndexSpec builds the canonical (primary-ascending) index once
// and serves exact specs by reuse and negated specs by run reversal; FirstN,
// RangeSelect and ungrouped MIN/MAX accept whichever compatible spec is
// cached; HashJoin's merge paths cover string and multi-key joins with
// output bit-identical to the hash path at any thread count; and RangeSelect
// on 64-bit columns is exact beyond 2^53 (typed comparisons, never a double
// round-trip).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/gdk/kernels.h"

#include "tests/support/telemetry_probe.h"

namespace sciql {
namespace gdk {
namespace {

BATPtr RandomInts(size_t n, uint64_t seed, uint64_t domain, bool with_nulls) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kInt);
  b->ints().resize(n);
  for (auto& v : b->ints()) {
    if (with_nulls && rng.Below(19) == 0) {
      v = kIntNil;
    } else {
      v = static_cast<int32_t>(rng.Below(domain)) -
          static_cast<int32_t>(domain / 2);
    }
  }
  return b;
}

BATPtr RandomStrs(size_t n, uint64_t seed, uint64_t domain, bool with_nulls) {
  Rng rng(seed);
  auto b = BAT::Make(PhysType::kStr);
  for (size_t i = 0; i < n; ++i) {
    if (with_nulls && rng.Below(17) == 0) {
      EXPECT_TRUE(b->Append(ScalarValue::Null(PhysType::kStr)).ok());
    } else {
      EXPECT_TRUE(
          b->Append(ScalarValue::Str("s" + std::to_string(rng.Below(domain))))
              .ok());
    }
  }
  return b;
}

// Fresh value-identical copies with no cached indexes: the oracle inputs
// for "what would a from-scratch sort/join produce".
BATPtr Uncached(const BATPtr& b) {
  auto c = b->CloneData();
  c->InvalidateOrderIndex();
  return c;
}

std::vector<std::pair<oid_t, oid_t>> SortedPairs(const JoinResult& jr) {
  std::vector<std::pair<oid_t, oid_t>> pairs;
  const auto& l = jr.left->oids();
  const auto& r = jr.right->oids();
  pairs.reserve(l.size());
  for (size_t i = 0; i < l.size(); ++i) pairs.emplace_back(l[i], r[i]);
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// --------------------------------------------------------------------------
// Spec cache: build once, reuse exact, reverse negated
// --------------------------------------------------------------------------

TEST(OrderSpec, MultiKeySpecBuildsOnceAndReuses) {
  auto a = RandomInts(40000, 11, 25, true);  // duplicate-heavy primary
  auto c = RandomInts(40000, 13, 5000, true);
  const std::vector<BATPtr> keys = {a, c};
  testsupport::TestProbe().Rebase();
  auto idx1 = EnsureOrderIndexSpec(keys, {false, true});
  ASSERT_TRUE(idx1.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built_multi, 1u);
  auto idx2 = EnsureOrderIndexSpec(keys, {false, true});
  ASSERT_TRUE(idx2.ok());
  EXPECT_EQ(idx1->get(), idx2->get());  // same build
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_reused, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_reused_multi, 1u);

  // The cached permutation equals a from-scratch sort of the same spec.
  auto oracle = OrderIndex({Uncached(a).get(), Uncached(c).get()},
                           {false, true});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(**idx1, (*oracle)->oids());
}

TEST(OrderSpec, NegatedSpecServedByRunReversalNotASecondSort) {
  auto a = RandomInts(30000, 17, 40, true);
  auto c = RandomInts(30000, 19, 40, true);
  const std::vector<BATPtr> keys = {a, c};
  testsupport::TestProbe().Rebase();
  ASSERT_TRUE(EnsureOrderIndexSpec(keys, {false, true}).ok());
  ASSERT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  // The fully negated spec must not sort again.
  auto rev = EnsureOrderIndexSpec(keys, {true, false});
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_reversed, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_reversed_multi, 1u);
  auto oracle = OrderIndex({Uncached(a).get(), Uncached(c).get()},
                           {true, false});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(**rev, (*oracle)->oids());  // bit-identical, ties stay stable
}

TEST(OrderSpec, SingleKeyDescDerivesFromAscendingIndex) {
  auto b = RandomInts(50000, 23, 60, true);  // nils + heavy ties
  testsupport::TestProbe().Rebase();
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  ASSERT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  auto desc = OrderIndex({b.get()}, {true});
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);  // no second sort
  EXPECT_GE(testsupport::TestProbe().delta().order_index_reversed, 1u);
  auto oracle = OrderIndex({Uncached(b).get()}, {true});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ((*desc)->oids(), (*oracle)->oids());
  // Nil block relocated: nils (smallest) come out last under DESC.
  const auto& ord = (*desc)->oids();
  size_t nnil = b->CountNulls();
  ASSERT_GT(nnil, 0u);
  for (size_t i = ord.size() - nnil; i < ord.size(); ++i) {
    EXPECT_TRUE(b->IsNullAt(ord[i]));
  }
}

TEST(OrderSpec, ReversalKeepsTiesStable) {
  auto b = BAT::Make(PhysType::kInt);
  b->ints() = {2, 1, 2, 1, kIntNil};
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  auto desc = OrderIndex({b.get()}, {true});
  ASSERT_TRUE(desc.ok());
  // Stable DESC: the 2s keep insertion order, then the 1s, nil last.
  EXPECT_EQ((*desc)->oids(), (std::vector<oid_t>{0, 2, 1, 3, 4}));
}

TEST(OrderSpec, SecondaryKeyMutationInvalidatesSpecEntry) {
  auto a = RandomInts(5000, 29, 10, false);
  auto c = RandomInts(5000, 31, 500, false);
  const std::vector<BATPtr> keys = {a, c};
  testsupport::TestProbe().Rebase();
  ASSERT_TRUE(EnsureOrderIndexSpec(keys, {false, false}).ok());
  ASSERT_EQ(testsupport::TestProbe().delta().order_index_built, 1u);
  ASSERT_TRUE(c->Set(7, ScalarValue::Int(-12345)).ok());  // mutate secondary
  auto again = EnsureOrderIndexSpec(keys, {false, false});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 2u);  // stale entry not reused
  auto oracle = OrderIndex({Uncached(a).get(), Uncached(c).get()},
                           {false, false});
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(**again, (*oracle)->oids());
}

// --------------------------------------------------------------------------
// FirstN windows over the keyed cache
// --------------------------------------------------------------------------

TEST(OrderSpec, FirstNServedFromMultiKeyAndReversedSpecs) {
  auto a = RandomInts(80000, 37, 30, true);
  auto c = RandomInts(80000, 41, 4000, true);
  const std::vector<BATPtr> keys = {a, c};
  ASSERT_TRUE(EnsureOrderIndexSpec(keys, {false, true}).ok());
  auto full = OrderIndex({Uncached(a).get(), Uncached(c).get()},
                         {false, true});
  ASSERT_TRUE(full.ok());
  testsupport::TestProbe().Rebase();
  auto top = FirstN({a.get(), c.get()}, {false, true}, 37);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_index_window, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ((*top)->oids(),
            std::vector<oid_t>((*full)->oids().begin(),
                               (*full)->oids().begin() + 37));
  // The negated spec rides the same cached build via run reversal.
  auto rfull = OrderIndex({Uncached(a).get(), Uncached(c).get()},
                          {true, false});
  ASSERT_TRUE(rfull.ok());
  testsupport::TestProbe().Rebase();
  auto rtop = FirstN({a.get(), c.get()}, {true, false}, 37);
  ASSERT_TRUE(rtop.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_index_window, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ((*rtop)->oids(),
            std::vector<oid_t>((*rfull)->oids().begin(),
                               (*rfull)->oids().begin() + 37));
}

TEST(OrderSpec, FirstNDescWindowFromAscendingSingleKeyIndex) {
  auto b = RandomInts(60000, 43, 900, true);
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  auto oracle = OrderIndex({Uncached(b).get()}, {true});
  ASSERT_TRUE(oracle.ok());
  testsupport::TestProbe().Rebase();
  auto top = FirstN({b.get()}, {true}, 11);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().firstn_index_window, 1u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ((*top)->oids(),
            std::vector<oid_t>((*oracle)->oids().begin(),
                               (*oracle)->oids().begin() + 11));
}

// --------------------------------------------------------------------------
// Index-backed MIN/MAX and RangeSelect accept any compatible spec
// --------------------------------------------------------------------------

TEST(OrderSpec, MinMaxServedFromMultiKeyIndex) {
  auto vals = RandomInts(30000, 47, 700, true);
  auto sec = RandomInts(30000, 53, 50, true);
  auto min_oracle = Aggregate(AggOp::kMin, *Uncached(vals));
  auto max_oracle = Aggregate(AggOp::kMax, *Uncached(vals));
  ASSERT_TRUE(min_oracle.ok());
  ASSERT_TRUE(max_oracle.ok());
  ASSERT_TRUE(EnsureOrderIndexSpec({vals, sec}, {false, true}).ok());
  ASSERT_EQ(vals->order_index(), nullptr);  // only the multi-key spec lives
  testsupport::TestProbe().Rebase();
  auto mn = Aggregate(AggOp::kMin, *vals);
  auto mx = Aggregate(AggOp::kMax, *vals);
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().minmax_index, 2u);
  EXPECT_EQ(testsupport::TestProbe().delta().order_index_built, 0u);
  EXPECT_EQ(mn->AsInt64(), min_oracle->AsInt64());
  EXPECT_EQ(mx->AsInt64(), max_oracle->AsInt64());
}

TEST(OrderSpec, MinMaxMultiKeyIndexKeepsFirstArrivalZeroSign) {
  // The max value ties between -0.0 (row 0) and 0.0 (row 2); the scan keeps
  // the first-arriving row, so the index path must return -0.0 even though
  // the secondary key orders the tie run differently.
  auto vals = BAT::Make(PhysType::kDbl);
  vals->dbls() = {-0.0, -1.5, 0.0, -2.5};
  auto sec = BAT::Make(PhysType::kInt);
  sec->ints() = {9, 1, 2, 3};  // orders 0.0 before -0.0 inside the tie run
  auto scan = Aggregate(AggOp::kMax, *Uncached(vals));
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(std::signbit(scan->d));
  ASSERT_TRUE(EnsureOrderIndexSpec({vals, sec}, {false, false}).ok());
  testsupport::TestProbe().Rebase();
  auto mx = Aggregate(AggOp::kMax, *vals);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().minmax_index, 1u);
  EXPECT_TRUE(std::signbit(mx->d)) << "index path must keep the scan's -0.0";
}

TEST(OrderSpec, RangeSelectServedFromMultiKeyIndex) {
  auto vals = RandomInts(50000, 59, 4000, true);
  auto sec = RandomInts(50000, 61, 10, true);
  auto scan = RangeSelect(*Uncached(vals), nullptr, ScalarValue::Int(-50),
                          ScalarValue::Int(50), true, true);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(EnsureOrderIndexSpec({vals, sec}, {false, false}).ok());
  ASSERT_EQ(vals->order_index(), nullptr);
  auto via = RangeSelect(*vals, nullptr, ScalarValue::Int(-50),
                         ScalarValue::Int(50), true, true);
  ASSERT_TRUE(via.ok());
  EXPECT_EQ((*via)->oids(), (*scan)->oids());
}

// --------------------------------------------------------------------------
// 64-bit RangeSelect precision (values straddling 2^53)
// --------------------------------------------------------------------------

TEST(OrderSpec, RangeSelectLngExactBeyondTwoPow53) {
  const int64_t p53 = int64_t{1} << 53;  // 9007199254740992
  auto b = BAT::Make(PhysType::kLng);
  b->lngs() = {p53 - 1, p53, p53 + 1, -p53 - 1, -p53, -p53 + 1,
               kLngNil, 0, std::numeric_limits<int64_t>::max()};
  // [2^53+1, 2^53+1]: in double space 2^53 and 2^53+1 collapse onto one
  // value, so an unfixed implementation also selects row 1.
  auto one = RangeSelect(*b, nullptr, ScalarValue::Lng(p53 + 1),
                         ScalarValue::Lng(p53 + 1), true, true);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ((*one)->oids(), (std::vector<oid_t>{2}));
  // Exclusive bounds around 2^53 keep only 2^53 itself.
  auto excl = RangeSelect(*b, nullptr, ScalarValue::Lng(p53 - 1),
                          ScalarValue::Lng(p53 + 1), false, false);
  ASSERT_TRUE(excl.ok());
  EXPECT_EQ((*excl)->oids(), (std::vector<oid_t>{1}));
  // Negative side: [-2^53-1, -2^53-1] selects exactly the one row.
  auto neg = RangeSelect(*b, nullptr, ScalarValue::Lng(-p53 - 1),
                         ScalarValue::Lng(-p53 - 1), true, true);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ((*neg)->oids(), (std::vector<oid_t>{3}));
  // INT64_MAX inclusive upper bound reaches the extreme row exactly.
  auto maxr = RangeSelect(
      *b, nullptr, ScalarValue::Lng(std::numeric_limits<int64_t>::max()),
      ScalarValue::Lng(std::numeric_limits<int64_t>::max()), true, true);
  ASSERT_TRUE(maxr.ok());
  EXPECT_EQ((*maxr)->oids(), (std::vector<oid_t>{8}));

  // The index route must use the same typed partition predicate: identical
  // oid sets once an index is live.
  ASSERT_TRUE(EnsureOrderIndex(*b).ok());
  auto one_idx = RangeSelect(*b, nullptr, ScalarValue::Lng(p53 + 1),
                             ScalarValue::Lng(p53 + 1), true, true);
  ASSERT_TRUE(one_idx.ok());
  EXPECT_EQ((*one_idx)->oids(), (std::vector<oid_t>{2}));
  auto excl_idx = RangeSelect(*b, nullptr, ScalarValue::Lng(p53 - 1),
                              ScalarValue::Lng(p53 + 1), false, false);
  ASSERT_TRUE(excl_idx.ok());
  EXPECT_EQ((*excl_idx)->oids(), (std::vector<oid_t>{1}));
}

TEST(OrderSpec, RangeSelectLngDoubleBoundsRoundExactly) {
  const int64_t p53 = int64_t{1} << 53;
  auto b = BAT::Make(PhysType::kLng);
  b->lngs() = {p53 - 1, p53, p53 + 1, 2, 3};
  // A fractional double lower bound must round up to the next integer.
  auto r = RangeSelect(*b, nullptr, ScalarValue::Dbl(2.5),
                       ScalarValue::Dbl(3.5), true, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->oids(), (std::vector<oid_t>{4}));
  // An exclusive integral double bound excludes exactly that integer.
  auto e = RangeSelect(*b, nullptr, ScalarValue::Dbl(2.0),
                       ScalarValue::Dbl(3.0), false, false);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->oids().empty());
  // Huge double bounds clamp instead of wrapping.
  auto all = RangeSelect(*b, nullptr, ScalarValue::Dbl(-1e300),
                         ScalarValue::Dbl(1e300), true, true);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ((*all)->oids().size(), 5u);
}

// --------------------------------------------------------------------------
// String and multi-key merge joins: bit-identical to the hash path
// --------------------------------------------------------------------------

TEST(OrderSpec, MergeJoinStringsBitIdenticalToHashAcrossThreads) {
  auto l = RandomStrs(30000, 67, 400, true);   // dup-heavy, with nils
  auto r = RandomStrs(70000, 71, 400, true);   // separate heap
  testsupport::TestProbe().Rebase();
  auto hash = HashJoin(*l, *r);
  ASSERT_TRUE(hash.ok());
  ASSERT_EQ(testsupport::TestProbe().delta().joins_hash, 1u);
  ASSERT_GT(hash->left->Count(), 0u);
  ASSERT_TRUE(EnsureOrderIndex(*l).ok());
  ASSERT_TRUE(EnsureOrderIndex(*r).ok());
  for (int threads : {1, 2, 8}) {
    ThreadPool::Get().SetThreadCount(threads);
    testsupport::TestProbe().Rebase();
    auto merged = HashJoin(*l, *r);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(testsupport::TestProbe().delta().joins_merge, 1u) << "threads=" << threads;
    EXPECT_EQ(testsupport::TestProbe().delta().joins_merge_str, 1u);
    EXPECT_EQ(testsupport::TestProbe().delta().joins_hash, 0u);
    EXPECT_EQ(hash->left->oids(), merged->left->oids())
        << "threads=" << threads;
    EXPECT_EQ(hash->right->oids(), merged->right->oids())
        << "threads=" << threads;
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(OrderSpec, MergeJoinStringsAcrossDistinctHeapsComparesContent) {
  // Same string values interned into two different heaps: offsets differ,
  // content matches — the merge must agree with the hash join.
  auto l = BAT::Make(PhysType::kStr);
  auto r = BAT::Make(PhysType::kStr);
  for (const char* s : {"b", "a", "c", "a"}) {
    ASSERT_TRUE(l->Append(ScalarValue::Str(s)).ok());
  }
  for (const char* s : {"z", "a", "b", "b"}) {
    ASSERT_TRUE(r->Append(ScalarValue::Str(s)).ok());
  }
  ASSERT_TRUE(r->Append(ScalarValue::Null(PhysType::kStr)).ok());
  auto hash = HashJoin(*Uncached(l), *Uncached(r));
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(EnsureOrderIndex(*l).ok());
  ASSERT_TRUE(EnsureOrderIndex(*r).ok());
  testsupport::TestProbe().Rebase();
  auto merged = HashJoin(*l, *r);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().joins_merge_str, 1u);
  EXPECT_EQ(hash->left->oids(), merged->left->oids());
  EXPECT_EQ(hash->right->oids(), merged->right->oids());
  EXPECT_EQ(merged->left->Count(), 4u);  // a x a, a x a, b x b, b x b
}

TEST(OrderSpec, MergeJoinMultiKeyBitIdenticalToHashAcrossThreads) {
  auto l0 = RandomInts(40000, 73, 20, true);
  auto l1 = RandomInts(40000, 79, 30, true);   // nils nest inside l0 runs
  auto r0 = RandomInts(90000, 83, 20, true);
  auto r1 = RandomInts(90000, 89, 30, true);
  testsupport::TestProbe().Rebase();
  auto hash = HashJoinMulti({l0.get(), l1.get()}, {r0.get(), r1.get()});
  ASSERT_TRUE(hash.ok());
  ASSERT_EQ(testsupport::TestProbe().delta().joins_hash, 1u);
  ASSERT_GT(hash->left->Count(), 0u);
  ASSERT_TRUE(EnsureOrderIndexSpec({l0, l1}, {false, false}).ok());
  ASSERT_TRUE(EnsureOrderIndexSpec({r0, r1}, {false, false}).ok());
  for (int threads : {1, 2, 8}) {
    ThreadPool::Get().SetThreadCount(threads);
    testsupport::TestProbe().Rebase();
    auto merged = HashJoinMulti({l0.get(), l1.get()}, {r0.get(), r1.get()});
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(testsupport::TestProbe().delta().joins_merge, 1u) << "threads=" << threads;
    EXPECT_EQ(testsupport::TestProbe().delta().joins_merge_multi, 1u);
    EXPECT_EQ(testsupport::TestProbe().delta().joins_hash, 0u);
    EXPECT_EQ(hash->left->oids(), merged->left->oids())
        << "threads=" << threads;
    EXPECT_EQ(hash->right->oids(), merged->right->oids())
        << "threads=" << threads;
  }
  ThreadPool::Get().SetThreadCount(1);
}

TEST(OrderSpec, MergeJoinMultiKeyMixedTypesIncludingStrings) {
  auto l0 = RandomStrs(20000, 97, 60, true);
  auto l1 = RandomInts(20000, 101, 12, true);
  auto r0 = RandomStrs(20000, 103, 60, true);
  auto r1 = RandomInts(20000, 107, 12, true);
  auto hash = HashJoinMulti({l0.get(), l1.get()}, {r0.get(), r1.get()});
  ASSERT_TRUE(hash.ok());
  ASSERT_GT(hash->left->Count(), 0u);
  ASSERT_TRUE(EnsureOrderIndexSpec({l0, l1}, {false, false}).ok());
  ASSERT_TRUE(EnsureOrderIndexSpec({r0, r1}, {false, false}).ok());
  testsupport::TestProbe().Rebase();
  auto merged = HashJoinMulti({l0.get(), l1.get()}, {r0.get(), r1.get()});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().joins_merge_multi, 1u);
  EXPECT_EQ(hash->left->oids(), merged->left->oids());
  EXPECT_EQ(hash->right->oids(), merged->right->oids());
}

TEST(OrderSpec, MergeJoinMultiKeyOneSideUnindexedKeepsHashPath) {
  auto l0 = RandomInts(5000, 109, 15, true);
  auto l1 = RandomInts(5000, 113, 15, true);
  auto r0 = RandomInts(5000, 127, 15, true);
  auto r1 = RandomInts(5000, 131, 15, true);
  ASSERT_TRUE(EnsureOrderIndexSpec({l0, l1}, {false, false}).ok());
  testsupport::TestProbe().Rebase();
  auto jr = HashJoinMulti({l0.get(), l1.get()}, {r0.get(), r1.get()});
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(testsupport::TestProbe().delta().joins_merge, 0u);
  EXPECT_EQ(testsupport::TestProbe().delta().joins_hash, 1u);
}

}  // namespace
}  // namespace gdk
}  // namespace sciql
