#include "src/vault/vault.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/vault/synth.h"

namespace sciql {
namespace vault {
namespace {

TEST(PgmTest, RoundTripBinary) {
  Image img = MakeGradientImage(13, 7);
  std::string bytes = SerializePgm(img);
  auto back = ParsePgm(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width, 13u);
  EXPECT_EQ(back->height, 7u);
  EXPECT_EQ(back->pixels, img.pixels);
}

TEST(PgmTest, ParseAsciiP2) {
  auto img = ParsePgm("P2\n# comment\n2 2\n255\n0 64\n128 255\n");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->At(1, 0), 64);
  EXPECT_EQ(img->At(0, 1), 128);
}

TEST(PgmTest, RejectsGarbage) {
  EXPECT_FALSE(ParsePgm("JUNK").ok());
  EXPECT_FALSE(ParsePgm("P5\n2 2\n255\nab").ok());  // truncated pixels
  EXPECT_FALSE(ParsePgm("P5\n0 2\n255\n").ok());
}

TEST(PgmTest, FileRoundTrip) {
  Image img = MakeCheckerboardImage(8, 8, 2);
  std::string path = ::testing::TempDir() + "/sciql_pgm_test.pgm";
  ASSERT_TRUE(WritePgm(img, path).ok());
  auto back = ReadPgm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->pixels, img.pixels);
  std::remove(path.c_str());
}

TEST(SynthTest, DeterministicGenerators) {
  Image a = MakeBuildingImage(32, 32, 5);
  Image b = MakeBuildingImage(32, 32, 5);
  EXPECT_EQ(a.pixels, b.pixels);
  Image t1 = MakeTerrainImage(32, 32, 60, 5);
  Image t2 = MakeTerrainImage(32, 32, 60, 5);
  EXPECT_EQ(t1.pixels, t2.pixels);
}

TEST(SynthTest, TerrainHasWaterMode) {
  Image t = MakeTerrainImage(64, 64, 60, 7);
  size_t low = 0;
  for (int32_t p : t.pixels) {
    ASSERT_GE(p, 0);
    ASSERT_LE(p, 255);
    if (p < 60) ++low;
  }
  // A meaningful share of the terrain reads as water.
  EXPECT_GT(low, t.pixels.size() / 20);
}

TEST(VaultTest, LoadStoreRoundTrip) {
  engine::Database db;
  Image img = MakeGradientImage(6, 4);
  ASSERT_TRUE(LoadImage(&db, "img", img).ok());

  // The array has the documented shape.
  auto arr = db.catalog()->GetArray("img");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)->desc.dims()[0].range.Size(), 6u);
  EXPECT_EQ((*arr)->desc.dims()[1].range.Size(), 4u);

  // Pixels are queryable as cells.
  auto rs = db.Query("SELECT v FROM img WHERE x = 5 AND y = 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), img.At(5, 3));

  auto back = StoreImage(&db, "img");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->pixels, img.pixels);
}

TEST(VaultTest, StoreRendersHolesAsBlack) {
  engine::Database db;
  Image img = MakeGradientImage(4, 4);
  ASSERT_TRUE(LoadImage(&db, "img", img).ok());
  ASSERT_TRUE(db.Run("DELETE FROM img WHERE x = 0").ok());
  auto back = StoreImage(&db, "img");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->At(0, 0), 0);
  EXPECT_EQ(back->At(1, 1), img.At(1, 1));
}

TEST(VaultTest, PgmFileIntoDatabase) {
  engine::Database db;
  Image img = MakeTerrainImage(16, 16);
  std::string path = ::testing::TempDir() + "/sciql_vault_test.pgm";
  ASSERT_TRUE(WritePgm(img, path).ok());
  ASSERT_TRUE(LoadPgmFile(&db, "terrain", path).ok());
  auto rs = db.Query("SELECT COUNT(*) AS n FROM terrain");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Value(0, 0).AsInt64(), 256);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vault
}  // namespace sciql
