// End-to-end scientific workflow (TELEIOS-style): ingest a remote-sensing
// raster, analyse it with a mix of array and relational queries, persist the
// session, reload it and continue — the full symbiosis the paper argues for.

#include <gtest/gtest.h>

#include "src/catalog/persist.h"
#include "src/engine/database.h"
#include "src/img/ops.h"
#include "src/vault/synth.h"
#include "src/vault/vault.h"

namespace sciql {
namespace {

TEST(WorkflowTest, RemoteSensingSession) {
  engine::Database db;

  // 1. Ingest the raster through the vault.
  vault::Image earth = vault::MakeTerrainImage(48, 48, 60, 19);
  ASSERT_TRUE(vault::LoadImage(&db, "earth", earth).ok());

  // 2. Metadata lives in an ordinary table, side by side with the array.
  ASSERT_TRUE(db.Run("CREATE TABLE acquisitions "
                     "(img VARCHAR, sensor VARCHAR, cloud INT)")
                  .ok());
  ASSERT_TRUE(db.Run("INSERT INTO acquisitions VALUES "
                     "('earth', 'synthetic-sar', 3)")
                  .ok());

  // 3. Water mask as a derived array (in-DB processing).
  ASSERT_TRUE(db.Run("CREATE ARRAY water AS SELECT [x], [y], "
                     "CASE WHEN v < 60 THEN 1 ELSE 0 END AS v FROM earth")
                  .ok());
  auto water_cells = db.Query("SELECT SUM(v) AS n FROM water");
  ASSERT_TRUE(water_cells.ok());
  int64_t water_count = water_cells->Value(0, 0).AsInt64();
  EXPECT_GT(water_count, 0);
  EXPECT_LT(water_count, 48 * 48);

  // 4. Smooth the land intensities with structural grouping.
  ASSERT_TRUE(db.Run("CREATE ARRAY smooth AS SELECT [x], [y], AVG(v) AS v "
                     "FROM earth GROUP BY earth[x-1:x+2][y-1:y+2]")
                  .ok());

  // 5. Cross-check: the smoothed mean equals the raw mean (box filters
  //    preserve totals up to border effects; compare coarsely).
  auto raw_avg = db.Query("SELECT AVG(v) AS a FROM earth");
  auto smooth_avg = db.Query("SELECT AVG(v) AS a FROM smooth");
  ASSERT_TRUE(raw_avg.ok());
  ASSERT_TRUE(smooth_avg.ok());
  EXPECT_NEAR(raw_avg->Value(0, 0).d, smooth_avg->Value(0, 0).d, 3.0);

  // 6. Areas of interest: join the image with a freshly created box table.
  auto roi = img::AreasOfInterest(&db, "earth", {{4, 12, 4, 12}});
  ASSERT_TRUE(roi.ok());
  EXPECT_EQ(roi->NumRows(), 64u);

  // 7. Persist the whole session...
  auto bytes = catalog::SerializeCatalog(*db.catalog());
  ASSERT_TRUE(bytes.ok());

  // ... reload it elsewhere and continue analysing.
  engine::Database db2;
  ASSERT_TRUE(catalog::DeserializeCatalog(db2.catalog(), *bytes).ok());
  auto meta = db2.Query(
      "SELECT sensor FROM acquisitions WHERE img = 'earth'");
  ASSERT_TRUE(meta.ok());
  ASSERT_EQ(meta->NumRows(), 1u);
  EXPECT_EQ(meta->Value(0, 0).s, "synthetic-sar");

  auto hist = img::Histogram(&db2, "earth");
  ASSERT_TRUE(hist.ok());
  int64_t total = 0;
  for (const auto& [v, c] : *hist) total += c;
  EXPECT_EQ(total, 48 * 48);

  // 8. The reloaded arrays still tile correctly.
  auto rs = db2.Query(
      "SELECT [x], [y], MAX(v) AS m FROM earth "
      "GROUP BY earth[x:x+4][y:y+4] HAVING x MOD 4 = 0 AND y MOD 4 = 0");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->NumRows(), 144u);  // 12x12 anchors
}

TEST(WorkflowTest, GameOfLifeWithResizeAndPersistence) {
  engine::Database db;
  ASSERT_TRUE(db.Run("CREATE ARRAY life (x INT DIMENSION[0:1:8], "
                     "y INT DIMENSION[0:1:8], v INT DEFAULT 0)")
                  .ok());
  ASSERT_TRUE(
      db.Run("INSERT INTO life (x, y, v) VALUES (1, 2, 1), (2, 2, 1), "
             "(3, 2, 1)")  // blinker
          .ok());
  const char* step =
      "INSERT INTO life (SELECT [x], [y], "
      "CASE WHEN SUM(v) - v = 3 THEN 1 "
      "WHEN v = 1 AND SUM(v) - v = 2 THEN 1 ELSE 0 END "
      "FROM life GROUP BY life[x-1:x+2][y-1:y+2])";
  ASSERT_TRUE(db.Run(step).ok());

  // Grow the universe mid-game; the pattern survives.
  ASSERT_TRUE(
      db.Run("ALTER ARRAY life ALTER DIMENSION x SET RANGE [0:1:16]").ok());
  ASSERT_TRUE(
      db.Run("ALTER ARRAY life ALTER DIMENSION y SET RANGE [0:1:16]").ok());
  auto pop = db.Query("SELECT SUM(v) AS p FROM life");
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop->Value(0, 0).AsInt64(), 3);

  // Persist mid-simulation and resume in a new database.
  auto bytes = catalog::SerializeCatalog(*db.catalog());
  ASSERT_TRUE(bytes.ok());
  engine::Database db2;
  ASSERT_TRUE(catalog::DeserializeCatalog(db2.catalog(), *bytes).ok());
  ASSERT_TRUE(db2.Run(step).ok());
  auto pop2 = db2.Query("SELECT SUM(v) AS p FROM life");
  ASSERT_TRUE(pop2.ok());
  EXPECT_EQ(pop2->Value(0, 0).AsInt64(), 3);  // blinker stays period 2
}

}  // namespace
}  // namespace sciql
