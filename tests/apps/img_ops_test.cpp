// Scenario II: every image operation executed as a SciQL query must agree
// with its native in-memory counterpart.

#include "src/img/ops.h"

#include <gtest/gtest.h>

#include "src/vault/synth.h"
#include "src/vault/vault.h"

namespace sciql {
namespace img {
namespace {

using vault::Image;

class ImgOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    img_ = vault::MakeBuildingImage(24, 20, 3);
    ASSERT_TRUE(vault::LoadImage(&db_, "img", img_).ok());
  }

  Image MustStore(const std::string& name) {
    auto r = vault::StoreImage(&db_, name);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r.value()) : Image();
  }

  engine::Database db_;
  Image img_;
};

TEST_F(ImgOpsTest, InvertMatchesNative) {
  ASSERT_TRUE(Invert(&db_, "img", "inv").ok());
  EXPECT_EQ(MustStore("inv").pixels, native::Invert(img_).pixels);
}

TEST_F(ImgOpsTest, EdgeDetectMatchesNative) {
  ASSERT_TRUE(EdgeDetect(&db_, "img", "edges").ok());
  EXPECT_EQ(MustStore("edges").pixels, native::EdgeDetect(img_).pixels);
}

TEST_F(ImgOpsTest, SmoothMatchesNative) {
  ASSERT_TRUE(Smooth(&db_, "img", "smooth").ok());
  EXPECT_EQ(MustStore("smooth").pixels, native::Smooth(img_).pixels);
}

TEST_F(ImgOpsTest, ReduceMatchesNative) {
  ASSERT_TRUE(Reduce2x(&db_, "img", "small").ok());
  Image got = MustStore("small");
  Image want = native::Reduce2x(img_);
  EXPECT_EQ(got.width, want.width);
  EXPECT_EQ(got.height, want.height);
  EXPECT_EQ(got.pixels, want.pixels);
}

TEST_F(ImgOpsTest, RotateMatchesNative) {
  ASSERT_TRUE(Rotate90(&db_, "img", "rot").ok());
  Image got = MustStore("rot");
  Image want = native::Rotate90(img_);
  EXPECT_EQ(got.width, want.width);
  EXPECT_EQ(got.height, want.height);
  EXPECT_EQ(got.pixels, want.pixels);
}

TEST_F(ImgOpsTest, RotateFourTimesIsIdentity) {
  ASSERT_TRUE(Rotate90(&db_, "img", "r1").ok());
  ASSERT_TRUE(Rotate90(&db_, "r1", "r2").ok());
  ASSERT_TRUE(Rotate90(&db_, "r2", "r3").ok());
  ASSERT_TRUE(Rotate90(&db_, "r3", "r4").ok());
  EXPECT_EQ(MustStore("r4").pixels, img_.pixels);
}

TEST_F(ImgOpsTest, BrightenSaturates) {
  ASSERT_TRUE(Brighten(&db_, "img", "bright", 40).ok());
  Image got = MustStore("bright");
  Image want = native::Brighten(img_, 40);
  EXPECT_EQ(got.pixels, want.pixels);
  for (int32_t p : got.pixels) EXPECT_LE(p, 255);
}

TEST_F(ImgOpsTest, HistogramMatchesNative) {
  auto got = Histogram(&db_, "img");
  ASSERT_TRUE(got.ok());
  auto want = native::Histogram(img_);
  ASSERT_EQ(got->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*got)[i].first, want[i].first);
    EXPECT_EQ((*got)[i].second, want[i].second);
  }
  // Sanity: counts add up to the pixel count.
  int64_t total = 0;
  for (const auto& [v, c] : *got) total += c;
  EXPECT_EQ(total, static_cast<int64_t>(img_.pixels.size()));
}

TEST_F(ImgOpsTest, ZoomMatchesNative) {
  ASSERT_TRUE(Zoom2x(&db_, "img", "zoom", 4, 4, 8, 6).ok());
  Image got = MustStore("zoom");
  Image want = native::Zoom2x(img_, 4, 4, 8, 6);
  EXPECT_EQ(got.width, want.width);
  EXPECT_EQ(got.pixels, want.pixels);
}

TEST_F(ImgOpsTest, AreasOfInterestShipsOnlySelectedPixels) {
  std::vector<Box> boxes = {{2, 6, 3, 7}, {10, 12, 0, 2}};
  auto rs = AreasOfInterest(&db_, "img", boxes);
  ASSERT_TRUE(rs.ok());
  auto want = native::AreasOfInterest(img_, boxes);
  EXPECT_EQ(rs->NumRows(), want.size());
  // Every returned pixel carries its true intensity.
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    int64_t x = rs->Value(r, 0).AsInt64();
    int64_t y = rs->Value(r, 1).AsInt64();
    EXPECT_EQ(rs->Value(r, 2).AsInt64(),
              img_.At(static_cast<size_t>(x), static_cast<size_t>(y)));
  }
}

TEST_F(ImgOpsTest, AreasOfInterestEmptyMask) {
  auto rs = AreasOfInterest(&db_, "img", {});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 0u);
}

TEST_F(ImgOpsTest, MaskedSelect) {
  // Bit-mask array: 1 on a single row.
  ASSERT_TRUE(db_
                  .Run("CREATE ARRAY m (x INT DIMENSION[0:1:24], "
                       "y INT DIMENSION[0:1:20], v INT DEFAULT 0)")
                  .ok());
  ASSERT_TRUE(db_.Run("UPDATE m SET v = 1 WHERE y = 5").ok());
  auto rs = MaskedSelect(&db_, "img", "m");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 24u);
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    EXPECT_EQ(rs->Value(r, 1).AsInt64(), 5);
  }
}

TEST_F(ImgOpsTest, WaterFilterOnTerrain) {
  Image terrain = vault::MakeTerrainImage(24, 24, 60, 11);
  ASSERT_TRUE(vault::LoadImage(&db_, "terrain", terrain).ok());
  ASSERT_TRUE(FilterWater(&db_, "terrain", "land", 60).ok());
  Image got = MustStore("land");
  Image want = native::FilterWater(terrain, 60);
  EXPECT_EQ(got.pixels, want.pixels);
  // Water became black; land survives.
  bool any_zero = false;
  for (int32_t p : got.pixels) any_zero = any_zero || p == 0;
  EXPECT_TRUE(any_zero);
}

}  // namespace
}  // namespace img
}  // namespace sciql
