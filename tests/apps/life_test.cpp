#include "src/life/life.h"

#include <gtest/gtest.h>

namespace sciql {
namespace life {
namespace {

TEST(LifeTest, BlinkerOscillatesViaSciql) {
  engine::Database db;
  auto board = LifeBoard::Create(&db, "life", 5);
  ASSERT_TRUE(board.ok());
  ASSERT_TRUE(board->Seed(Pattern::kBlinker, 1, 1).ok());
  auto before = board->Snapshot();
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(board->StepSciql().ok());
  auto mid = board->Snapshot();
  ASSERT_TRUE(mid.ok());
  EXPECT_NE(*before, *mid);  // horizontal -> vertical

  ASSERT_TRUE(board->StepSciql().ok());
  auto after = board->Snapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);  // period 2
}

TEST(LifeTest, BlockIsStill) {
  engine::Database db;
  auto board = LifeBoard::Create(&db, "life", 6);
  ASSERT_TRUE(board.ok());
  ASSERT_TRUE(board->Seed(Pattern::kBlock, 2, 2).ok());
  auto before = board->Snapshot();
  ASSERT_TRUE(board->StepSciql().ok());
  auto after = board->Snapshot();
  EXPECT_EQ(*before, *after);
}

TEST(LifeTest, GliderTranslatesDiagonally) {
  engine::Database db;
  auto board = LifeBoard::Create(&db, "life", 10);
  ASSERT_TRUE(board.ok());
  ASSERT_TRUE(board->Seed(Pattern::kGlider, 1, 1).ok());
  auto p0 = board->Population();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(board->StepSciql().ok());
  }
  // After 4 generations a glider is translated by (1,1), population 5.
  auto p4 = board->Population();
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(*p4, 5);
}

TEST(LifeTest, SciqlMatchesNativeOnRandomBoards) {
  engine::Database db;
  auto board = LifeBoard::Create(&db, "life", 16);
  ASSERT_TRUE(board.ok());
  ASSERT_TRUE(board->Seed(Pattern::kRandom, 0, 0, 0.35, 99).ok());

  engine::Database db2;
  auto board2 = LifeBoard::Create(&db2, "life", 16);
  ASSERT_TRUE(board2.ok());
  ASSERT_TRUE(board2->Seed(Pattern::kRandom, 0, 0, 0.35, 99).ok());

  for (int gen = 0; gen < 5; ++gen) {
    ASSERT_TRUE(board->StepSciql().ok());
    ASSERT_TRUE(board2->StepNative().ok());
    auto a = board->Snapshot();
    auto b = board2->Snapshot();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(*a, *b) << "diverged at generation " << gen;
  }
}

TEST(LifeTest, NeighborTileFormulationAgrees) {
  // The explicit 8-cell tile (anchor excluded) computes the same
  // generations as the 3x3 range tile with the SUM(v)-v correction.
  engine::Database db;
  auto a = LifeBoard::Create(&db, "lifea", 14);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Seed(Pattern::kRandom, 0, 0, 0.35, 17).ok());

  engine::Database db2;
  auto b = LifeBoard::Create(&db2, "lifeb", 14);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->Seed(Pattern::kRandom, 0, 0, 0.35, 17).ok());

  for (int gen = 0; gen < 4; ++gen) {
    ASSERT_TRUE(a->StepSciql().ok());
    ASSERT_TRUE(b->StepSciqlNeighborTile().ok());
    auto sa = a->Snapshot();
    auto sb = b->Snapshot();
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_EQ(*sa, *sb) << "neighbour-tile diverged at generation " << gen;
  }
}

TEST(LifeTest, SqlSelfJoinMatchesSciql) {
  engine::Database db;
  auto a = LifeBoard::Create(&db, "lifea", 12);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Seed(Pattern::kRandom, 0, 0, 0.3, 7).ok());

  engine::Database db2;
  auto b = LifeBoard::Create(&db2, "lifeb", 12);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->Seed(Pattern::kRandom, 0, 0, 0.3, 7).ok());

  for (int gen = 0; gen < 3; ++gen) {
    ASSERT_TRUE(a->StepSciql().ok());
    ASSERT_TRUE(b->StepSqlSelfJoin().ok());
    auto sa = a->Snapshot();
    auto sb = b->Snapshot();
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_EQ(*sa, *sb) << "self-join diverged at generation " << gen;
  }
}

TEST(LifeTest, ClearAndResize) {
  engine::Database db;
  auto board = LifeBoard::Create(&db, "life", 8);
  ASSERT_TRUE(board.ok());
  ASSERT_TRUE(board->Seed(Pattern::kRandom, 0, 0, 0.5, 3).ok());
  ASSERT_TRUE(board->Clear().ok());
  auto pop = board->Population();
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(*pop, 0);

  ASSERT_TRUE(board->Seed(Pattern::kBlock, 1, 1).ok());
  ASSERT_TRUE(board->Resize(12).ok());
  EXPECT_EQ(board->size(), 12u);
  auto pop2 = board->Population();
  ASSERT_TRUE(pop2.ok());
  EXPECT_EQ(*pop2, 4);  // pattern survives the resize
}

TEST(LifeTest, RenderShowsPattern) {
  engine::Database db;
  auto board = LifeBoard::Create(&db, "life", 4);
  ASSERT_TRUE(board.ok());
  ASSERT_TRUE(board->SetCell(0, 0, 1).ok());
  auto text = board->Render();
  ASSERT_TRUE(text.ok());
  // (0,0) is bottom-left in the rendering.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text->size()) {
    size_t nl = text->find('\n', start);
    lines.push_back(text->substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[3][0], '#');
  EXPECT_EQ(lines[0][0], '.');
}

TEST(LifeTest, TooSmallBoardRejected) {
  engine::Database db;
  EXPECT_FALSE(LifeBoard::Create(&db, "life", 2).ok());
}

}  // namespace
}  // namespace life
}  // namespace sciql
