#include <gtest/gtest.h>

#include "src/mal/interpreter.h"
#include "src/mal/optimizer.h"
#include "src/mal/program.h"

namespace sciql {
namespace mal {
namespace {

using gdk::ScalarValue;

TEST(MalProgramTest, TextualRenderingMatchesPaperStyle) {
  MalProgram prog;
  int x = prog.NewReg("x");
  prog.Emit("array", "series", {x},
            {prog.Const(ScalarValue::Int(0)), prog.Const(ScalarValue::Int(1)),
             prog.Const(ScalarValue::Int(4)), prog.Const(ScalarValue::Int(4)),
             prog.Const(ScalarValue::Int(1))});
  std::string text = prog.ToString();
  EXPECT_NE(text.find("x_0 := array.series(0, 1, 4, 4, 1);"),
            std::string::npos);
}

TEST(MalInterpreterTest, RunsSeriesAndFiller) {
  MalProgram prog;
  int x = prog.EmitR("array", "series",
                     {prog.Const(ScalarValue::Lng(0)),
                      prog.Const(ScalarValue::Lng(1)),
                      prog.Const(ScalarValue::Lng(4)),
                      prog.Const(ScalarValue::Lng(4)),
                      prog.Const(ScalarValue::Lng(1))},
                     "x");
  int v = prog.EmitR("array", "filler",
                     {prog.Const(ScalarValue::Lng(16)),
                      prog.Const(ScalarValue::Int(0))},
                     "v");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  ASSERT_TRUE(ctx.Reg(x).IsBat());
  EXPECT_EQ(ctx.Reg(x).bat->Count(), 16u);
  EXPECT_EQ(ctx.Reg(v).bat->Count(), 16u);
}

TEST(MalInterpreterTest, BatcalcChain) {
  MalProgram prog;
  int a = prog.EmitR("array", "series",
                     {prog.Const(ScalarValue::Lng(0)),
                      prog.Const(ScalarValue::Lng(1)),
                      prog.Const(ScalarValue::Lng(5)),
                      prog.Const(ScalarValue::Lng(1)),
                      prog.Const(ScalarValue::Lng(1))},
                     "a");
  int b = prog.EmitR("batcalc", "*", {a, prog.Const(ScalarValue::Int(3))},
                     "b");
  int c = prog.EmitR("batcalc", "+", {b, prog.Const(ScalarValue::Int(1))},
                     "c");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(c).bat->ints(), (std::vector<int32_t>{1, 4, 7, 10, 13}));
}

TEST(MalInterpreterTest, UnknownOperationFails) {
  MalProgram prog;
  prog.EmitR("nosuch", "op", {}, "z");
  MalContext ctx(nullptr);
  Status st = MalEngine::Global().Run(prog, &ctx);
  EXPECT_FALSE(st.ok());
}

TEST(MalInterpreterTest, ErrorsCarryOperationName) {
  MalProgram prog;
  int a = prog.EmitR("array", "filler",
                     {prog.Const(ScalarValue::Lng(3)),
                      prog.Const(ScalarValue::Int(1))},
                     "a");
  prog.EmitR("batcalc", "/", {a, prog.Const(ScalarValue::Int(0))}, "d");
  MalContext ctx(nullptr);
  Status st = MalEngine::Global().Run(prog, &ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("batcalc./"), std::string::npos);
}

TEST(OptimizerTest, ConstantFolding) {
  MalProgram prog;
  int c = prog.EmitR("batcalc", "+",
                     {prog.Const(ScalarValue::Int(2)),
                      prog.Const(ScalarValue::Int(40))},
                     "c");
  prog.AddResult("c", c, false);
  OptimizerStats stats;
  ASSERT_TRUE(Optimize(&prog, &stats).ok());
  EXPECT_GE(stats.folded, 1u);
  EXPECT_TRUE(prog.instrs().empty());
  EXPECT_TRUE(prog.regs()[static_cast<size_t>(c)].is_const);
  EXPECT_EQ(prog.regs()[static_cast<size_t>(c)].cval.i, 42);
}

TEST(OptimizerTest, DeadCodeElimination) {
  MalProgram prog;
  int used = prog.EmitR("array", "filler",
                        {prog.Const(ScalarValue::Lng(3)),
                         prog.Const(ScalarValue::Int(1))},
                        "used");
  prog.EmitR("array", "filler",
             {prog.Const(ScalarValue::Lng(99)),
              prog.Const(ScalarValue::Int(2))},
             "unused");
  prog.AddResult("out", used, false);
  OptimizerStats stats;
  ASSERT_TRUE(Optimize(&prog, &stats).ok());
  EXPECT_EQ(stats.dead_removed, 1u);
  ASSERT_EQ(prog.instrs().size(), 1u);
}

TEST(OptimizerTest, CommonSubexpressionElimination) {
  MalProgram prog;
  int a = prog.EmitR("array", "series",
                     {prog.Const(ScalarValue::Lng(0)),
                      prog.Const(ScalarValue::Lng(1)),
                      prog.Const(ScalarValue::Lng(4)),
                      prog.Const(ScalarValue::Lng(1)),
                      prog.Const(ScalarValue::Lng(1))},
                     "a");
  int one = prog.Const(ScalarValue::Int(1));
  int b1 = prog.EmitR("batcalc", "+", {a, one}, "b1");
  int b2 = prog.EmitR("batcalc", "+", {a, one}, "b2");
  int c = prog.EmitR("batcalc", "*", {b1, b2}, "c");
  prog.AddResult("c", c, false);
  OptimizerStats stats;
  ASSERT_TRUE(Optimize(&prog, &stats).ok());
  EXPECT_EQ(stats.cse_removed, 1u);
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(c).bat->ints(), (std::vector<int32_t>{1, 4, 9, 16}));
}

TEST(OptimizerTest, ImpureOpsAreNeverRemoved) {
  MalProgram prog;
  // sql.append is impure; even with unused results it must stay.
  prog.Emit("sql", "append", {},
            {prog.Const(ScalarValue::Str("t")),
             prog.Const(ScalarValue::Str("c")),
             prog.EmitR("array", "filler",
                        {prog.Const(ScalarValue::Lng(1)),
                         prog.Const(ScalarValue::Int(1))},
                        "v")});
  OptimizerStats stats;
  ASSERT_TRUE(Optimize(&prog, &stats).ok());
  EXPECT_EQ(prog.instrs().size(), 2u);
  EXPECT_EQ(stats.dead_removed, 0u);
}

TEST(OptimizerTest, FoldingKeepsFailingInstructions) {
  MalProgram prog;
  int d = prog.EmitR("batcalc", "/",
                     {prog.Const(ScalarValue::Int(1)),
                      prog.Const(ScalarValue::Int(0))},
                     "d");
  prog.AddResult("d", d, false);
  OptimizerStats stats;
  ASSERT_TRUE(Optimize(&prog, &stats).ok());
  // Division by zero is not folded away; it must fail at run time.
  ASSERT_EQ(prog.instrs().size(), 1u);
  MalContext ctx(nullptr);
  EXPECT_FALSE(MalEngine::Global().Run(prog, &ctx).ok());
}

}  // namespace
}  // namespace mal
}  // namespace sciql
