// Tests for the MAL plan verifier (src/mal/verify.h): hand-corrupted
// programs must each produce their named diagnostic, planner-emitted
// programs for a battery of real SQL must all verify, and a fixed-seed
// 200-case generated sweep must never trip the verifier.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/fuzz/fuzz.h"
#include "src/mal/program.h"
#include "src/mal/verify.h"

namespace sciql {
namespace mal {
namespace {

using gdk::ScalarValue;

// Scoped verifier enable: these tests must behave identically in Debug
// (where the flag defaults on) and optimized builds.
class VerifyScope {
 public:
  VerifyScope() : saved_(GetVerifyControls()) {
    GetVerifyControls().enabled = true;
  }
  ~VerifyScope() { GetVerifyControls() = saved_; }

 private:
  VerifyControls saved_;
};

// The check names of every diagnostic a program produces, in order.
std::vector<std::string> Checks(const MalProgram& prog) {
  std::vector<std::string> out;
  for (const VerifyDiag& d : VerifyProgramDiags(prog)) out.push_back(d.check);
  return out;
}

// A small valid program: x := array.series(...); y := batcalc.*(x, 2);
// s := aggr.sum_all(y), with s as the result column.
MalProgram ValidProgram() {
  MalProgram prog;
  auto lng = [&prog](int64_t v) { return prog.Const(ScalarValue::Lng(v)); };
  int x = prog.EmitR("array", "series",
                     {lng(0), lng(1), lng(8), lng(8), lng(1)}, "x");
  int y = prog.EmitR("batcalc", "*", {x, prog.Const(ScalarValue::Int(2))},
                     "y");
  int s = prog.EmitR("aggr", "sum_all", {y}, "s");
  prog.AddResult("s", s, false);
  return prog;
}

TEST(MalVerifyTest, ValidProgramHasNoDiagnostics) {
  MalProgram prog = ValidProgram();
  EXPECT_TRUE(Checks(prog).empty());
  EXPECT_TRUE(VerifyProgram(prog).ok());
}

TEST(MalVerifyTest, UseBeforeDef) {
  MalProgram prog;
  int ghost = prog.NewReg("ghost");  // never assigned
  prog.EmitR("batcalc", "+", {ghost, prog.Const(ScalarValue::Int(1))}, "y");
  std::vector<std::string> checks = Checks(prog);
  ASSERT_FALSE(checks.empty());
  EXPECT_EQ(checks[0], "use-before-def");
  Status st = VerifyProgram(prog);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("use-before-def"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("ghost"), std::string::npos) << st.ToString();
}

TEST(MalVerifyTest, DoubleAssign) {
  MalProgram prog;
  int x = prog.EmitR("bat", "dense", {prog.Const(ScalarValue::Lng(4))}, "x");
  // Re-assign x: single assignment is violated.
  prog.Emit("bat", "dense", {x}, {prog.Const(ScalarValue::Lng(5))});
  EXPECT_EQ(Checks(prog), std::vector<std::string>{"double-assign"});
}

TEST(MalVerifyTest, ConstAssign) {
  MalProgram prog;
  int c = prog.Const(ScalarValue::Lng(4));
  prog.Emit("bat", "dense", {c}, {prog.Const(ScalarValue::Lng(5))});
  EXPECT_EQ(Checks(prog), std::vector<std::string>{"const-assign"});
}

TEST(MalVerifyTest, ArityMismatch) {
  MalProgram prog;
  // array.series takes exactly 5 numeric scalars; give it 3.
  prog.EmitR("array", "series",
             {prog.Const(ScalarValue::Lng(0)), prog.Const(ScalarValue::Lng(1)),
              prog.Const(ScalarValue::Lng(4))},
             "x");
  EXPECT_EQ(Checks(prog), std::vector<std::string>{"arity-mismatch"});
}

TEST(MalVerifyTest, VariadicArityMismatch) {
  MalProgram prog;
  int x = prog.EmitR("bat", "dense", {prog.Const(ScalarValue::Lng(4))}, "x");
  // algebra.sort takes (bat, direction) pairs; a dangling odd argument
  // breaks the group shape.
  prog.EmitR("algebra", "sort", {x, prog.Const(ScalarValue::Int(0)), x},
             "sorted");
  EXPECT_EQ(Checks(prog), std::vector<std::string>{"arity-mismatch"});
}

TEST(MalVerifyTest, TypeMismatch) {
  MalProgram prog;
  // bat.count needs a BAT argument; a numeric constant is not one.
  prog.EmitR("bat", "count", {prog.Const(ScalarValue::Lng(7))}, "n");
  std::vector<std::string> checks = Checks(prog);
  ASSERT_FALSE(checks.empty());
  EXPECT_EQ(checks[0], "type-mismatch");
}

TEST(MalVerifyTest, UnknownOp) {
  MalProgram prog;
  prog.EmitR("nosuch", "op", {prog.Const(ScalarValue::Int(1))}, "x");
  std::vector<std::string> checks = Checks(prog);
  ASSERT_FALSE(checks.empty());
  EXPECT_EQ(checks[0], "unknown-op");
}

TEST(MalVerifyTest, BadRegister) {
  MalProgram prog;
  // A register index pointing past the register file (a corrupted plan).
  prog.EmitR("bat", "count", {9999}, "n");
  std::vector<std::string> checks = Checks(prog);
  ASSERT_FALSE(checks.empty());
  EXPECT_EQ(checks[0], "bad-register");
}

TEST(MalVerifyTest, ResultUndefined) {
  MalProgram prog = ValidProgram();
  int dangling = prog.NewReg("dangling");
  prog.AddResult("c1", dangling, false);
  EXPECT_EQ(Checks(prog), std::vector<std::string>{"result-undefined"});
}

TEST(MalVerifyTest, RejectionBumpsCounterAndNamesInstruction) {
  MalProgram prog;
  int ghost = prog.NewReg("g");
  prog.EmitR("batcalc", "+", {ghost, prog.Const(ScalarValue::Int(1))}, "y");
  uint64_t rejected_before = VerifyStats().programs_rejected.load();
  Status st = VerifyProgram(prog);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(VerifyStats().programs_rejected.load(), rejected_before + 1);
  // The diagnostic names the offending instruction index and renders it.
  EXPECT_NE(st.message().find("at #0"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("batcalc.+"), std::string::npos)
      << st.ToString();
}

// Planner integration: a battery of real SQL across every plan shape the
// compiler emits (scans, selections, joins, grouping, ordering, limits,
// arrays, tiling, DML) must produce verifier-clean programs, in both
// firstn-fusion modes. With the verifier forced on, any rejection would
// fail the statement itself; the counters prove verification actually ran.
TEST(MalVerifyTest, PlannerProgramsVerifyClean) {
  VerifyScope verify_on;
  uint64_t verified_before = VerifyStats().programs_verified.load();
  uint64_t rejected_before = VerifyStats().programs_rejected.load();

  for (bool fuse : {true, false}) {
    engine::GetPlannerControls().fuse_firstn = fuse;
    engine::Database db;
    auto run = [&db](const std::string& sql) {
      Status st = db.Run(sql);
      ASSERT_TRUE(st.ok()) << sql << " -> " << st.ToString();
    };
    run("CREATE TABLE t (a INT, b DOUBLE, s VARCHAR)");
    run("INSERT INTO t VALUES (1, 1.5, 'one'), (2, 2.5, 'two'), "
        "(3, 3.5, 'three'), (4, 4.5, 'four')");
    run("CREATE TABLE u (a INT, c INT)");
    run("INSERT INTO u VALUES (2, 20), (3, 30), (5, 50)");
    run("SELECT a, b FROM t WHERE a > 1 AND b < 4.0");
    run("SELECT t.a, t.s, u.c FROM t, u WHERE t.a = u.a");
    run("SELECT a, SUM(b) AS sb, COUNT(*) AS n FROM t GROUP BY a "
        "HAVING COUNT(*) > 0");
    run("SELECT MAX(b) AS mx FROM t");
    run("SELECT a, b FROM t ORDER BY b DESC, a LIMIT 2");
    run("SELECT s FROM t WHERE s <> 'two' ORDER BY s");
    run("UPDATE t SET b = b + 1.0 WHERE a = 2");
    run("DELETE FROM t WHERE a = 4");
    run("CREATE ARRAY g (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], "
        "v INT DEFAULT 0)");
    run("UPDATE g SET v = x + y");
    run("SELECT x, y, v FROM g WHERE v > 2");
    run("SELECT [x], [y], AVG(v) FROM g GROUP BY g[x:x+2][y:y+2]");
  }
  engine::GetPlannerControls().Reset();

  EXPECT_GT(VerifyStats().programs_verified.load(), verified_before);
  EXPECT_EQ(VerifyStats().programs_rejected.load(), rejected_before);
}

// Fixed-seed generated sweep: 200 fuzz cases through a verify-enabled
// in-memory database. The generator emits only well-formed SQL, so every
// compiled program must verify — the rejected counter staying flat is the
// assertion (execution outcomes are the differential oracle's business,
// not this test's).
TEST(MalVerifyTest, TwoHundredGeneratedCasesVerifyClean) {
  VerifyScope verify_on;
  uint64_t rejected_before = VerifyStats().programs_rejected.load();
  uint64_t verified_before = VerifyStats().programs_verified.load();

  fuzz::GeneratorOptions gen;
  gen.queries_per_case = 3;
  gen.max_rows = 30;  // keep tier-1 wall time bounded
  constexpr uint64_t kSeed = 20130622;  // same vintage as the fuzz smoke test
  for (uint64_t i = 0; i < 200; ++i) {
    fuzz::FuzzCase fc = fuzz::GenerateCase(kSeed + i, gen);
    engine::Database db;
    for (const fuzz::FuzzStatement& st : fc.stmts) {
      // Setup statements must succeed; generated queries may legitimately
      // fail (division by zero, overflow guards) — but never because the
      // verifier rejected the plan, which the counter check below proves.
      (void)db.Run(st.sql);
    }
  }

  EXPECT_EQ(VerifyStats().programs_rejected.load(), rejected_before);
  EXPECT_GT(VerifyStats().programs_verified.load(), verified_before + 200);
}

}  // namespace
}  // namespace mal
}  // namespace sciql
