// MAL operation coverage beyond the basics: bat.* helpers, algebra.sort /
// slice / njoin, catalog-backed sql.* ops and the array module through the
// interpreter.

#include <gtest/gtest.h>

#include "src/array/tiling.h"
#include "src/mal/interpreter.h"
#include "src/mal/program.h"

namespace sciql {
namespace mal {
namespace {

using gdk::ScalarValue;

int SeriesReg(MalProgram* p, int64_t start, int64_t step, int64_t stop) {
  return p->EmitR("array", "series",
                  {p->Const(ScalarValue::Lng(start)),
                   p->Const(ScalarValue::Lng(step)),
                   p->Const(ScalarValue::Lng(stop)),
                   p->Const(ScalarValue::Lng(1)),
                   p->Const(ScalarValue::Lng(1))},
                  "s");
}

TEST(MalModulesTest, BatHelpers) {
  MalProgram prog;
  int s = SeriesReg(&prog, 0, 1, 5);
  int n = prog.EmitR("bat", "count", {s}, "n");
  int d = prog.EmitR("bat", "dense", {n}, "d");
  int packed = prog.EmitR("bat", "pack",
                          {prog.Const(ScalarValue::Int(3)),
                           prog.Const(ScalarValue::Null(gdk::PhysType::kInt)),
                           prog.Const(ScalarValue::Int(5))},
                          "p");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(n).scalar.AsInt64(), 5);
  EXPECT_EQ(ctx.Reg(d).bat->Count(), 5u);
  EXPECT_EQ(ctx.Reg(d).bat->oids()[4], 4u);
  EXPECT_EQ(ctx.Reg(packed).bat->Count(), 3u);
  EXPECT_TRUE(ctx.Reg(packed).bat->IsNullAt(1));
}

TEST(MalModulesTest, SortAndSlice) {
  MalProgram prog;
  int s = SeriesReg(&prog, 10, -2, 0);  // 10 8 6 4 2
  int idx = prog.EmitR("algebra", "sort",
                       {s, prog.Const(ScalarValue::Lng(0))}, "idx");
  int sorted = prog.EmitR("algebra", "project", {s, idx}, "sorted");
  int sliced = prog.EmitR("algebra", "slice",
                          {sorted, prog.Const(ScalarValue::Lng(1)),
                           prog.Const(ScalarValue::Lng(3))},
                          "sl");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(sorted).bat->ints(),
            (std::vector<int32_t>{2, 4, 6, 8, 10}));
  EXPECT_EQ(ctx.Reg(sliced).bat->ints(), (std::vector<int32_t>{4, 6}));
}

TEST(MalModulesTest, SliceRejectsNegativeBoundsAndClampsHigh) {
  // Negative bounds would wrap to huge size_t offsets; the handler errors.
  for (auto [lo, hi] : {std::pair<int64_t, int64_t>{-1, 3},
                        std::pair<int64_t, int64_t>{0, -2}}) {
    MalProgram prog;
    int s = SeriesReg(&prog, 0, 1, 5);
    prog.EmitR("algebra", "slice",
               {s, prog.Const(ScalarValue::Lng(lo)),
                prog.Const(ScalarValue::Lng(hi))},
               "sl");
    MalContext ctx(nullptr);
    Status st = MalEngine::Global().Run(prog, &ctx);
    EXPECT_FALSE(st.ok()) << "lo=" << lo << " hi=" << hi;
  }
  // hi beyond the row count clamps (BAT::Slice), lo > count yields empty.
  MalProgram prog;
  int s = SeriesReg(&prog, 0, 1, 5);
  int clamped = prog.EmitR("algebra", "slice",
                           {s, prog.Const(ScalarValue::Lng(3)),
                            prog.Const(ScalarValue::Lng(100))},
                           "sl");
  int empty = prog.EmitR("algebra", "slice",
                         {s, prog.Const(ScalarValue::Lng(50)),
                          prog.Const(ScalarValue::Lng(60))},
                         "sl2");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(clamped).bat->ints(), (std::vector<int32_t>{3, 4}));
  EXPECT_EQ(ctx.Reg(empty).bat->Count(), 0u);
}

TEST(MalModulesTest, FirstNThroughInterpreter) {
  MalProgram prog;
  int s = SeriesReg(&prog, 10, -2, 0);  // 10 8 6 4 2
  int idx = prog.EmitR("algebra", "firstn",
                       {prog.Const(ScalarValue::Lng(2)), s,
                        prog.Const(ScalarValue::Lng(0))},
                       "idx");
  int top = prog.EmitR("algebra", "project", {s, idx}, "top");
  int desc = prog.EmitR("algebra", "firstn",
                        {prog.Const(ScalarValue::Lng(2)), s,
                         prog.Const(ScalarValue::Lng(1))},
                        "idxd");
  int topd = prog.EmitR("algebra", "project", {s, desc}, "topd");
  int zero = prog.EmitR("algebra", "firstn",
                        {prog.Const(ScalarValue::Lng(0)), s,
                         prog.Const(ScalarValue::Lng(0))},
                        "z");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(top).bat->ints(), (std::vector<int32_t>{2, 4}));
  EXPECT_EQ(ctx.Reg(topd).bat->ints(), (std::vector<int32_t>{10, 8}));
  EXPECT_EQ(ctx.Reg(zero).bat->Count(), 0u);

  // A negative k is an execution error, not a wrap-around.
  MalProgram bad;
  int s2 = SeriesReg(&bad, 0, 1, 5);
  bad.EmitR("algebra", "firstn",
            {bad.Const(ScalarValue::Lng(-3)), s2,
             bad.Const(ScalarValue::Lng(0))},
            "neg");
  MalContext ctx2(nullptr);
  EXPECT_FALSE(MalEngine::Global().Run(bad, &ctx2).ok());
}

TEST(MalModulesTest, NJoinThroughInterpreter) {
  MalProgram prog;
  int l = SeriesReg(&prog, 0, 1, 4);   // 0 1 2 3
  int r = SeriesReg(&prog, 2, 1, 6);   // 2 3 4 5
  int lo = prog.NewReg("lo");
  int ro = prog.NewReg("ro");
  prog.Emit("algebra", "njoin", {lo, ro},
            {prog.Const(ScalarValue::Lng(1)), l, r});
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(lo).bat->Count(), 2u);  // 2 and 3 match
}

TEST(MalModulesTest, SqlBindAgainstCatalog) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.CreateArray(
                     "a", array::ArrayDesc(
                              {array::DimDesc{"x", array::DimRange(0, 1, 3),
                                              false}},
                              {array::AttrDesc{"v", gdk::PhysType::kInt,
                                               ScalarValue::Int(7)}}))
                  .ok());
  MalProgram prog;
  int x = prog.EmitR("sql", "bind",
                     {prog.Const(ScalarValue::Str("a")),
                      prog.Const(ScalarValue::Str("x"))},
                     "x");
  int v = prog.EmitR("sql", "bind",
                     {prog.Const(ScalarValue::Str("a")),
                      prog.Const(ScalarValue::Str("v"))},
                     "v");
  int n = prog.EmitR("sql", "count",
                     {prog.Const(ScalarValue::Str("a"))}, "n");
  catalog::CatalogVersionPtr snap = cat.Pin();
  MalContext ctx(snap.get());
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(x).bat->ints(), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(ctx.Reg(v).bat->ints(), (std::vector<int32_t>{7, 7, 7}));
  EXPECT_EQ(ctx.Reg(n).scalar.AsInt64(), 3);

  // Binding a missing column fails with context.
  MalProgram bad;
  bad.EmitR("sql", "bind",
            {bad.Const(ScalarValue::Str("a")),
             bad.Const(ScalarValue::Str("nope"))},
            "z");
  MalContext ctx2(snap.get());
  EXPECT_FALSE(MalEngine::Global().Run(bad, &ctx2).ok());
}

TEST(MalModulesTest, TileAggThroughInterpreter) {
  array::ArrayDesc desc(
      {array::DimDesc{"x", array::DimRange(0, 1, 4), false}},
      {array::AttrDesc{"v", gdk::PhysType::kInt, ScalarValue::Int(0)}});
  auto spec = array::TileSpec::FromRanges({{0, 2}});
  ASSERT_TRUE(spec.ok());

  MalProgram prog;
  int vals = SeriesReg(&prog, 1, 1, 5);  // 1 2 3 4
  int desc_reg = prog.Obj(std::make_shared<array::ArrayDesc>(desc),
                          "arraydesc", "@a");
  int spec_reg = prog.Obj(std::make_shared<array::TileSpec>(*spec),
                          "tilespec", "a[x+0:x+2]");
  int agg = prog.EmitR("array", "tileagg",
                       {desc_reg, spec_reg,
                        prog.Const(ScalarValue::Str("sum")), vals},
                       "agg");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(agg).bat->lngs(), (std::vector<int64_t>{3, 5, 7, 4}));
}

TEST(MalModulesTest, CastOps) {
  MalProgram prog;
  int s = SeriesReg(&prog, 0, 1, 3);
  int d = prog.EmitR("batcalc", "cast_dbl", {s}, "d");
  int l = prog.EmitR("batcalc", "cast_lng", {s}, "l");
  int sc = prog.EmitR("batcalc", "cast_int",
                      {prog.Const(ScalarValue::Dbl(3.9))}, "sc");
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(d).bat->type(), gdk::PhysType::kDbl);
  EXPECT_EQ(ctx.Reg(l).bat->type(), gdk::PhysType::kLng);
  EXPECT_EQ(ctx.Reg(sc).scalar.i, 3);
}

TEST(MalModulesTest, ObjRegistersSurviveOptimization) {
  // Objects are opaque to the optimizer; the tileagg instruction keeps its
  // descriptor even after CSE/DCE rounds.
  array::ArrayDesc desc(
      {array::DimDesc{"x", array::DimRange(0, 1, 2), false}},
      {array::AttrDesc{"v", gdk::PhysType::kInt, ScalarValue::Int(0)}});
  auto spec = array::TileSpec::FromRanges({{0, 1}});
  ASSERT_TRUE(spec.ok());
  MalProgram prog;
  int vals = SeriesReg(&prog, 0, 1, 2);
  int agg = prog.EmitR(
      "array", "tileagg",
      {prog.Obj(std::make_shared<array::ArrayDesc>(desc), "arraydesc", "@a"),
       prog.Obj(std::make_shared<array::TileSpec>(*spec), "tilespec", "t"),
       prog.Const(ScalarValue::Str("count")), vals},
      "agg");
  prog.AddResult("agg", agg, false);
  MalContext ctx(nullptr);
  ASSERT_TRUE(MalEngine::Global().Run(prog, &ctx).ok());
  EXPECT_EQ(ctx.Reg(agg).bat->lngs(), (std::vector<int64_t>{1, 1}));
}

}  // namespace
}  // namespace mal
}  // namespace sciql
