// The shared workload + oracle for the storage fault-injection suites
// (tests/storage/crash_matrix_test.cpp, tests/storage/fault_injection_test.cpp).
//
// The workload mixes DDL, multi-row inserts (with NULLs, -0.0 and strings),
// updates, deletes, ORDER BY queries (so a cached order index persists) and
// two checkpoints — enough to drive every kind of mutating filesystem
// operation the engine issues: WAL create/append/fsync, heap + string-heap +
// order-index atomic writes (create, write, fsync, rename, dir-fsync),
// manifest commit, old-WAL removal and garbage-collection removes.
//
// The oracle is an in-memory Database: refs[n] is the rendered result of the
// probe queries after applying the first n mutating statements. A database
// recovered after a crash at any filesystem operation must render exactly
// refs[c] or refs[c+1], where c is the number of statements that committed
// before the failure — never anything in between (atomicity) and never less
// (durability of the acknowledged prefix).

#ifndef SCIQL_TESTS_SUPPORT_CRASH_WORKLOAD_H_
#define SCIQL_TESTS_SUPPORT_CRASH_WORKLOAD_H_

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/storage/manifest.h"
#include "src/storage/storage_engine.h"
#include "tests/support/golden_format.h"

namespace sciql {
namespace testsupport {

struct CrashStep {
  enum class Kind {
    kMutate,      ///< a WAL-logged statement (DDL/DML)
    kQuery,       ///< read-only; builds/caches order indexes, never logged
    kCheckpoint,  ///< engine::Database::Checkpoint()
  };
  Kind kind;
  const char* sql;  // nullptr for kCheckpoint
};

inline const std::vector<CrashStep>& CrashWorkloadSteps() {
  using K = CrashStep::Kind;
  static const std::vector<CrashStep> steps = {
      {K::kMutate, "CREATE TABLE t (k INT, v DOUBLE, s VARCHAR)"},
      {K::kMutate,
       "INSERT INTO t VALUES (1, 1.5, 'one'), (2, NULL, 'two'), "
       "(3, -0.0, 'three')"},
      {K::kMutate, "INSERT INTO t VALUES (4, 4.25, NULL)"},
      // Caches an order index on t.k so the checkpoint persists an .oidx
      // container alongside the heap.
      {K::kQuery, "SELECT k FROM t ORDER BY k"},
      {K::kCheckpoint, nullptr},
      {K::kMutate, "INSERT INTO t VALUES (5, 0.5, 'five'), (6, 6.5, 'six')"},
      {K::kMutate, "UPDATE t SET v = v * 2 WHERE k <= 2"},
      {K::kMutate, "DELETE FROM t WHERE k = 3"},
      // The delete invalidated the cached index; rebuild it so the second
      // checkpoint rewrites the .oidx container under a fresh epoch.
      {K::kQuery, "SELECT k FROM t ORDER BY k"},
      {K::kCheckpoint, nullptr},
      {K::kMutate, "INSERT INTO t VALUES (7, 7.75, 'seven')"},
  };
  return steps;
}

inline size_t CrashWorkloadMutationCount() {
  size_t n = 0;
  for (const CrashStep& s : CrashWorkloadSteps()) {
    if (s.kind == CrashStep::Kind::kMutate) n++;
  }
  return n;
}

/// \brief Render the probe queries against `db` into a comparable vector.
/// A failing probe (e.g. table t does not exist yet) renders as a marker
/// line instead of rows, so "empty database" has a distinct, stable shape.
inline std::vector<std::string> StorageSnapshot(engine::Database* db) {
  static const char* kProbes[] = {
      "SELECT k, v, s FROM t ORDER BY k",
      "SELECT COUNT(*), MIN(v), MAX(k) FROM t",
      "SELECT k FROM t WHERE v IS NULL ORDER BY k",
  };
  std::vector<std::string> out;
  for (const char* probe : kProbes) {
    auto rs = db->Query(probe);
    if (!rs.ok()) {
      out.push_back(std::string("<no result> ") + probe);
      continue;
    }
    for (size_t r = 0; r < rs->NumRows(); ++r) {
      out.push_back(RenderGoldenRow(*rs, r));
    }
    out.push_back("----");
  }
  return out;
}

/// \brief refs[n] = StorageSnapshot after the first n mutating statements,
/// computed against a purely in-memory database (the oracle never touches
/// storage, so it cannot share a bug with the code under test).
inline std::vector<std::vector<std::string>> ReferenceSnapshots() {
  std::vector<std::vector<std::string>> refs;
  engine::Database db;
  refs.push_back(StorageSnapshot(&db));
  for (const CrashStep& s : CrashWorkloadSteps()) {
    if (s.kind == CrashStep::Kind::kCheckpoint) continue;
    Status st = db.Run(s.sql);
    EXPECT_TRUE(st.ok()) << s.sql << ": " << st.ToString();
    if (s.kind == CrashStep::Kind::kMutate) {
      refs.push_back(StorageSnapshot(&db));
    }
  }
  return refs;
}

struct CrashOutcome {
  static constexpr int kOpenFailed = -2;
  static constexpr int kNoFailure = -1;

  /// Index into CrashWorkloadSteps() of the first failing step, or one of
  /// the sentinels above.
  int failed_step = kNoFailure;
  /// Mutating statements acknowledged (returned OK) before the failure.
  size_t committed = 0;
  /// The failing step was a mutating statement (its effect may legally be
  /// present or absent after recovery; a failed checkpoint or query changes
  /// no logical state).
  bool in_flight_mutation = false;
  Status error = Status::OK();
};

/// \brief Open `dir` with `options` and run the workload, stopping at the
/// first failure (after a failure the engine detaches its storage, so later
/// steps would run in-memory only and tell us nothing about the disk).
inline CrashOutcome RunCrashWorkload(const std::string& dir,
                                     const storage::OpenOptions& options,
                                     engine::Database* db) {
  CrashOutcome out;
  Status opened = db->Open(dir, options);
  if (!opened.ok()) {
    out.failed_step = CrashOutcome::kOpenFailed;
    out.error = opened;
    return out;
  }
  const std::vector<CrashStep>& steps = CrashWorkloadSteps();
  for (size_t i = 0; i < steps.size(); ++i) {
    const CrashStep& s = steps[i];
    Status st = s.kind == CrashStep::Kind::kCheckpoint ? db->Checkpoint()
                                                       : db->Run(s.sql);
    if (!st.ok()) {
      out.failed_step = static_cast<int>(i);
      out.in_flight_mutation = s.kind == CrashStep::Kind::kMutate;
      out.error = st;
      return out;
    }
    if (s.kind == CrashStep::Kind::kMutate) out.committed++;
  }
  return out;
}

/// \brief The heap-dir-relative file names the MANIFEST references, e.g.
/// "heaps/t.k.3.heap". Empty set (with a failed EXPECT) if it cannot decode.
inline std::set<std::string> ManifestReferencedFiles(const std::string& dir) {
  std::set<std::string> referenced;
  std::ifstream in(std::filesystem::path(dir) / "MANIFEST",
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "no MANIFEST in " << dir;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto manifest = storage::Manifest::Decode(bytes);
  EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
  if (!manifest.ok()) return referenced;
  auto note = [&referenced](const storage::ColumnFiles& f) {
    if (!f.heap.empty()) referenced.insert(f.heap);
    if (!f.strheap.empty()) referenced.insert(f.strheap);
    if (!f.oidx.empty()) referenced.insert(f.oidx);
  };
  for (const storage::TableManifest& tm : manifest->tables) {
    for (const storage::ColumnFiles& f : tm.files) note(f);
  }
  for (const storage::ArrayManifest& am : manifest->arrays) {
    for (const storage::ColumnFiles& f : am.files) note(f);
  }
  return referenced;
}

/// \brief Every file under dir/heaps, as heap-dir-relative names.
inline std::set<std::string> ListHeapFiles(const std::string& dir) {
  std::set<std::string> names;
  std::filesystem::path heaps = std::filesystem::path(dir) / "heaps";
  std::error_code ec;
  for (std::filesystem::directory_iterator it(heaps, ec), end;
       !ec && it != end; it.increment(ec)) {
    names.insert("heaps/" + it->path().filename().string());
  }
  return names;
}

/// \brief Any *.tmp leftovers anywhere in the database directory.
inline std::vector<std::string> ListTmpFiles(const std::string& dir) {
  std::vector<std::string> tmp;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".tmp") tmp.push_back(it->path().string());
  }
  return tmp;
}

}  // namespace testsupport
}  // namespace sciql

#endif  // SCIQL_TESTS_SUPPORT_CRASH_WORKLOAD_H_
