// Shared parser/renderer for the sqllogictest-style golden files under
// tests/sql/golden/ (format documented in tests/sql/golden_runner.cpp).
// Used by the golden conformance runner and by the storage durability suite,
// which replays a golden file's statements into a disk-backed database and
// checks the same expected rows after a checkpoint + reopen.

#ifndef SCIQL_TESTS_SUPPORT_GOLDEN_FORMAT_H_
#define SCIQL_TESTS_SUPPORT_GOLDEN_FORMAT_H_

#include <fstream>
#include <string>
#include <vector>

#include "src/engine/result_set.h"

namespace sciql {
namespace testsupport {

struct GoldenRecord {
  enum class Kind { kStatementOk, kStatementError, kQuery, kReset, kThreads };
  Kind kind = Kind::kStatementOk;
  int line = 0;  // 1-based line of the directive, for failure messages
  std::string sql;
  std::vector<std::string> expected;  // kQuery only
  bool sort_rows = false;             // kQuery only ("query sorted")
  int threads = 1;                    // kThreads only
};

/// \brief Render one result row the way golden files spell it: columns
/// joined with '|', strings unquoted, NULL as "null".
inline std::string RenderGoldenRow(const engine::ResultSet& rs, size_t row) {
  std::string out;
  for (size_t c = 0; c < rs.NumColumns(); ++c) {
    if (c > 0) out += '|';
    gdk::ScalarValue v = rs.Value(row, c);
    out += (v.type == gdk::PhysType::kStr && !v.is_null) ? v.s : v.ToString();
  }
  return out;
}

/// \brief Parse a golden file. Returns false (with *error set) on malformed
/// input; the caller decides how to report it.
inline bool ParseGoldenFile(const std::string& path,
                            std::vector<GoldenRecord>* records,
                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }

  size_t i = 0;
  auto blank_or_comment = [](const std::string& s) {
    return s.empty() || s[0] == '#';
  };
  while (i < lines.size()) {
    if (blank_or_comment(lines[i])) {
      ++i;
      continue;
    }
    GoldenRecord rec;
    rec.line = static_cast<int>(i) + 1;
    const std::string& head = lines[i];
    ++i;
    if (head == "statement ok") {
      rec.kind = GoldenRecord::Kind::kStatementOk;
    } else if (head == "statement error") {
      rec.kind = GoldenRecord::Kind::kStatementError;
    } else if (head == "query" || head == "query sorted") {
      rec.kind = GoldenRecord::Kind::kQuery;
      rec.sort_rows = head == "query sorted";
    } else if (head == "reset") {
      rec.kind = GoldenRecord::Kind::kReset;
      records->push_back(std::move(rec));
      continue;
    } else if (head.rfind("threads ", 0) == 0) {
      rec.kind = GoldenRecord::Kind::kThreads;
      rec.threads = std::stoi(head.substr(8));
      records->push_back(std::move(rec));
      continue;
    } else {
      *error = path + ":" + std::to_string(rec.line) +
               ": unknown directive '" + head + "'";
      return false;
    }
    // SQL body: up to ---- (query) or a blank line / EOF.
    std::string sql;
    while (i < lines.size() && !lines[i].empty() && lines[i] != "----") {
      if (!sql.empty()) sql += '\n';
      sql += lines[i];
      ++i;
    }
    rec.sql = sql;
    if (rec.kind == GoldenRecord::Kind::kQuery) {
      if (i >= lines.size() || lines[i] != "----") {
        *error = path + ":" + std::to_string(rec.line) +
                 ": query record lacks a ---- separator";
        return false;
      }
      ++i;  // skip ----
      while (i < lines.size() && !lines[i].empty()) {
        rec.expected.push_back(lines[i]);
        ++i;
      }
    }
    records->push_back(std::move(rec));
  }
  return true;
}

}  // namespace testsupport
}  // namespace sciql

#endif  // SCIQL_TESTS_SUPPORT_GOLDEN_FORMAT_H_
