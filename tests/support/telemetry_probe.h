// A process-wide gdk::TelemetryProbe for tests that pin kernel telemetry.
// KernelTelemetry is monotonic (Reset() was removed: zeroing the global
// would corrupt concurrent sessions and metric scrapes), so tests Rebase()
// the probe where they used to reset and read delta() where they used to
// read the global. Test binaries run their cases sequentially, so one
// shared probe is exactly the old semantics without touching the global.

#ifndef SCIQL_TESTS_SUPPORT_TELEMETRY_PROBE_H_
#define SCIQL_TESTS_SUPPORT_TELEMETRY_PROBE_H_

#include "src/gdk/kernels.h"

namespace sciql {
namespace testsupport {

inline gdk::TelemetryProbe& TestProbe() {
  static gdk::TelemetryProbe probe;
  return probe;
}

}  // namespace testsupport
}  // namespace sciql

#endif  // SCIQL_TESTS_SUPPORT_TELEMETRY_PROBE_H_
